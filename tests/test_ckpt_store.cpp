// Unit tests of the src/ckpt layer: CRC validation, manifest
// encode/decode, crash-consistent store semantics (generation fallback,
// pruning), the fault injector and the signal flags.
#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "ckpt/fault.hpp"
#include "ckpt/signal.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/units.hpp"

namespace dt::ckpt {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the test temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name) {
    path = fs::path(::testing::TempDir()) / name;
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32, MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  const std::string data = "123456789";
  EXPECT_EQ(crc32({data.data(), data.size()}), 0xCBF43926u);
}

TEST(Crc32, SeedChainsIncrementally) {
  const std::string a = "hello ", b = "world";
  const std::string ab = a + b;
  const auto whole = crc32({ab.data(), ab.size()});
  const auto chained =
      crc32({b.data(), b.size()}, crc32({a.data(), a.size()}));
  EXPECT_EQ(whole, chained);
}

TEST(Checkpoint, EncodeDecodeRoundTripsComponents) {
  CheckpointBuilder builder;
  builder.add("alpha", std::string("payload-a"));
  builder.add("beta", std::string("\x00\x01\x02\xff", 4));
  builder.component("gamma", [](std::ostream& os) { os << "streamed"; });

  const auto ck = Checkpoint::decode(builder.encode(7));
  EXPECT_EQ(ck.generation(), 7u);
  EXPECT_TRUE(ck.has("alpha"));
  EXPECT_TRUE(ck.has("beta"));
  EXPECT_FALSE(ck.has("delta"));
  EXPECT_EQ(ck.blob("alpha"), "payload-a");
  EXPECT_EQ(ck.blob("beta"), std::string("\x00\x01\x02\xff", 4));
  EXPECT_EQ(ck.blob("gamma"), "streamed");
  EXPECT_EQ(ck.names().size(), 3u);
}

TEST(Checkpoint, PreRefactorRawDoublePayloadStaysBitExact) {
  // Checkpoints written before the typed-units refactor serialized bare
  // doubles. The typed layer (common/units.hpp) must not change that
  // byte layout: a payload authored with raw write_pod<double> values
  // decodes unchanged, and wrapping the read value in a unit type is a
  // bit-exact no-op.
  const double energy = -123.456789e-3;
  const double log_f = 2.7182818284590452;
  std::ostringstream legacy;
  write_pod(legacy, energy);
  write_pod(legacy, log_f);

  std::ostringstream typed;
  write_pod(typed, units::Energy(energy).value());
  write_pod(typed, units::LogWeight(log_f).value());
  ASSERT_EQ(legacy.str(), typed.str());

  CheckpointBuilder builder;
  builder.add("walker", legacy.str());
  const auto ck = Checkpoint::decode(builder.encode(3));
  std::istringstream is(ck.blob("walker"));
  const units::Energy e_back(read_pod<double>(is));
  const units::LogWeight f_back(read_pod<double>(is));
  EXPECT_EQ(e_back.value(), energy);
  EXPECT_EQ(f_back.value(), log_f);
}

TEST(Checkpoint, DuplicateComponentNameThrows) {
  CheckpointBuilder builder;
  builder.add("x", "1");
  EXPECT_THROW(builder.add("x", "2"), dt::Error);
}

TEST(Checkpoint, MissingComponentThrows) {
  CheckpointBuilder builder;
  builder.add("x", "1");
  const auto ck = Checkpoint::decode(builder.encode(1));
  EXPECT_THROW((void)ck.blob("missing"), dt::Error);
}

TEST(Checkpoint, TruncationIsDetected) {
  CheckpointBuilder builder;
  builder.add("x", std::string(256, 'q'));
  const std::string bytes = builder.encode(1);
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{4}, std::size_t{0}}) {
    EXPECT_THROW(Checkpoint::decode(bytes.substr(0, cut)), dt::Error)
        << "cut at " << cut;
  }
}

TEST(Checkpoint, BitFlipAnywhereIsDetected) {
  CheckpointBuilder builder;
  builder.add("x", std::string(64, 'q'));
  const std::string bytes = builder.encode(1);
  // Flip one bit at a spread of offsets: header, directory, payload,
  // trailer. Every flip must fail validation (either the file CRC or a
  // component CRC).
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    EXPECT_THROW(Checkpoint::decode(bad), dt::Error) << "flip at " << i;
  }
}

TEST(CheckpointStore, SaveLoadRoundTrip) {
  TempDir dir("ckpt_roundtrip");
  CheckpointStore store(dir.str());
  CheckpointBuilder builder;
  builder.add("walker", "state-bytes");
  const SaveReport report = store.save(builder);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_GT(report.bytes, 0u);
  EXPECT_TRUE(fs::exists(report.path));

  const auto ck = store.load_latest();
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->generation(), 1u);
  EXPECT_EQ(ck->blob("walker"), "state-bytes");
}

TEST(CheckpointStore, NoTempFileSurvivesASave) {
  TempDir dir("ckpt_tmpfiles");
  CheckpointStore store(dir.str());
  CheckpointBuilder builder;
  builder.add("x", "1");
  store.save(builder);
  for (const auto& entry : fs::directory_iterator(dir.path))
    EXPECT_EQ(entry.path().extension(), ".dtc") << entry.path();
}

TEST(CheckpointStore, CorruptNewestFallsBackToPreviousGeneration) {
  TempDir dir("ckpt_fallback");
  CheckpointStore store(dir.str());
  CheckpointBuilder b1;
  b1.add("x", "generation-one");
  store.save(b1);
  CheckpointBuilder b2;
  b2.add("x", "generation-two");
  const auto rep2 = store.save(b2);

  // Corrupt generation 2 mid-file.
  std::string bytes = read_file(rep2.path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
  write_file(rep2.path, bytes);

  const auto ck = store.load_latest();
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->generation(), 1u);
  EXPECT_EQ(ck->blob("x"), "generation-one");
  // The corrupt generation is individually rejected.
  EXPECT_FALSE(store.load_generation(2).has_value());
  EXPECT_TRUE(store.load_generation(1).has_value());
}

TEST(CheckpointStore, TruncatedNewestFallsBack) {
  TempDir dir("ckpt_trunc");
  CheckpointStore store(dir.str());
  CheckpointBuilder b1;
  b1.add("x", "one");
  store.save(b1);
  CheckpointBuilder b2;
  b2.add("x", "two");
  const auto rep2 = store.save(b2);

  const std::string bytes = read_file(rep2.path);
  write_file(rep2.path, bytes.substr(0, bytes.size() / 3));

  const auto ck = store.load_latest();
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->generation(), 1u);
}

TEST(CheckpointStore, PrunesToKeepLast) {
  TempDir dir("ckpt_prune");
  CheckpointStore store(dir.str(), /*keep_last=*/2);
  for (int i = 0; i < 5; ++i) {
    CheckpointBuilder b;
    b.add("x", std::to_string(i));
    store.save(b);
  }
  EXPECT_EQ(store.generations(), (std::vector<std::uint64_t>{4, 5}));
  const auto ck = store.load_latest();
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->blob("x"), "4");
}

TEST(CheckpointStore, ResumesGenerationNumberingFromDisk) {
  TempDir dir("ckpt_regen");
  {
    CheckpointStore store(dir.str());
    CheckpointBuilder b;
    b.add("x", "1");
    store.save(b);
  }
  CheckpointStore reopened(dir.str());
  CheckpointBuilder b;
  b.add("x", "2");
  EXPECT_EQ(reopened.save(b).generation, 2u);
}

TEST(CheckpointStore, EmptyDirectoryLoadsNothing) {
  TempDir dir("ckpt_empty");
  CheckpointStore store(dir.str());
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_TRUE(store.generations().empty());
}

TEST(FaultInjector, DisarmedFaultPointIsFree) {
  FaultInjector::instance().disarm();
  EXPECT_NO_THROW(fault_point("anything"));
}

TEST(FaultInjector, ArmedSiteThrowsAfterSkippedHits) {
  auto& inj = FaultInjector::instance();
  inj.arm("site.a", /*skip_hits=*/2);
  EXPECT_NO_THROW(fault_point("site.b"));  // other sites unaffected
  EXPECT_NO_THROW(fault_point("site.a"));  // hit 1: skipped
  EXPECT_NO_THROW(fault_point("site.a"));  // hit 2: skipped
  EXPECT_THROW(fault_point("site.a"), FaultInjected);
  // One-shot: disarmed after triggering.
  EXPECT_NO_THROW(fault_point("site.a"));
}

TEST(FaultInjector, CountsVisitsWhenEnabled) {
  auto& inj = FaultInjector::instance();
  inj.disarm();
  inj.reset_counts();
  inj.count_visits(true);
  fault_point("site.c");
  fault_point("site.c");
  fault_point("site.d");
  EXPECT_EQ(inj.hits("site.c"), 2);
  EXPECT_EQ(inj.hits("site.d"), 1);
  EXPECT_EQ(inj.hits("site.never"), 0);
  inj.count_visits(false);
  fault_point("site.c");
  EXPECT_EQ(inj.hits("site.c"), 2);
}

TEST(SignalFlags, SaveRequestIsConsumedOnce) {
  auto& flags = SignalFlags::instance();
  flags.reset();
  EXPECT_FALSE(flags.consume_save_request());
  flags.request_save();
  EXPECT_TRUE(flags.consume_save_request());
  EXPECT_FALSE(flags.consume_save_request());
}

TEST(SignalFlags, StopIsSticky) {
  auto& flags = SignalFlags::instance();
  flags.reset();
  EXPECT_FALSE(flags.stop_requested());
  flags.request_stop();
  EXPECT_TRUE(flags.stop_requested());
  EXPECT_TRUE(flags.stop_requested());
  flags.reset();
  EXPECT_FALSE(flags.stop_requested());
}

}  // namespace
}  // namespace dt::ckpt
