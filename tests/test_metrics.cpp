#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/exposition.hpp"
#include "obs/health.hpp"

namespace dt::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Gauge, HoldsLastValue) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("g");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(FixedHistogram, BucketsAndOutOfRange) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 10.0, 5);
  h.observe(0.0);    // bucket 0 (lo is inclusive)
  h.observe(1.99);   // bucket 0
  h.observe(2.0);    // bucket 1
  h.observe(9.99);   // bucket 4
  h.observe(10.0);   // hi is exclusive -> overflow
  h.observe(-0.01);  // underflow
  h.observe(1e300);  // overflow

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 0u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(FixedHistogram, NanCountsAsUnderflow) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 1.0, 2);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(0.5);
  registry.histogram("hist", 0.0, 1.0, 4).observe(0.5);

  const MetricsSnapshot a = registry.snapshot();
  const MetricsSnapshot b = registry.snapshot();

  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].first, "alpha");
  EXPECT_EQ(a.counters[0].second, 2u);
  EXPECT_EQ(a.counters[1].first, "zebra");
  ASSERT_EQ(a.gauges.size(), 1u);
  EXPECT_EQ(a.gauges[0].first, "mid");
  ASSERT_EQ(a.histograms.size(), 1u);
  EXPECT_EQ(a.histograms[0].name, "hist");
  ASSERT_EQ(a.histograms[0].buckets.size(), 4u);
  EXPECT_EQ(a.histograms[0].buckets[2], 1u);

  // Same state -> identical snapshots.
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  EXPECT_EQ(a.histograms[0].buckets, b.histograms[0].buckets);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.counter("c").add(5);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  // Re-created after reset, starting fresh.
  EXPECT_EQ(registry.counter("c").value(), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsFromEightThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry every few iterations to also
      // exercise the find-or-create lock, not just the atomic adds.
      Counter& c = registry.counter("shared");
      FixedHistogram& h = registry.histogram("lat", 0.0, 1.0, 10);
      for (int i = 0; i < kIncrements; ++i) {
        c.add();
        registry.counter("shared2").add(2);
        h.observe(static_cast<double>(i % 10) / 10.0);
        registry.gauge("last").set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.counter("shared2").value(),
            2u * static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.histogram("lat", 0.0, 1.0, 10).total(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const double last = registry.gauge("last").value();
  EXPECT_GE(last, 0.0);
  EXPECT_LT(last, static_cast<double>(kIncrements));
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(FixedHistogram, SumTracksObservedValues) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 10.0, 5);
  h.observe(1.0);
  h.observe(2.5);
  h.observe(-3.0);  // underflow still contributes to the sum
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);
  h.observe(std::numeric_limits<double>::quiet_NaN());  // excluded
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);
}

TEST(FixedHistogram, QuantileOfEmptyHistogramIsNaN) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 1.0, 4);
  EXPECT_TRUE(std::isnan(h.value_at_quantile(0.5)));
}

TEST(FixedHistogram, QuantileSingleBucketInterpolatesLinearly) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 10.0, 1);
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.0), 0.0);
}

TEST(FixedHistogram, QuantileClampsOutOfRangeMassToEdges) {
  MetricsRegistry registry;
  FixedHistogram& under = registry.histogram("u", 0.0, 1.0, 2);
  for (int i = 0; i < 3; ++i) under.observe(-5.0);
  EXPECT_DOUBLE_EQ(under.value_at_quantile(0.5), 0.0);

  FixedHistogram& over = registry.histogram("o", 0.0, 1.0, 2);
  for (int i = 0; i < 3; ++i) over.observe(100.0);
  EXPECT_DOUBLE_EQ(over.value_at_quantile(0.5), 1.0);

  // q outside [0, 1] clamps rather than extrapolating.
  FixedHistogram& mid = registry.histogram("m", 0.0, 1.0, 2);
  mid.observe(0.25);
  EXPECT_DOUBLE_EQ(mid.value_at_quantile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(mid.value_at_quantile(2.0), mid.value_at_quantile(1.0));
}

TEST(FixedHistogram, QuantileInterpolatesAcrossBuckets) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 10.0, 5);
  for (const double x : {1.0, 3.0, 5.0, 7.0, 9.0}) h.observe(x);
  // Median rank 2.5 of 5 lands halfway through bucket [4, 6).
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.2), 2.0);
}

TEST(Exposition, SanitizeMapsInvalidCharsToUnderscore) {
  EXPECT_EQ(sanitize_metric_name("mc.accepts"), "mc_accepts");
  EXPECT_EQ(sanitize_metric_name("trace.span_log10_s.rewl"),
            "trace_span_log10_s_rewl");
  EXPECT_EQ(sanitize_metric_name("already_ok:name"), "already_ok:name");
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(Exposition, RendersCountersGaugesAndHistogramBuckets) {
  MetricsRegistry registry;
  registry.counter("mc.accepts").add(3);
  registry.gauge("run.flatness").set(0.75);
  FixedHistogram& h = registry.histogram("lat.seconds", 0.0, 4.0, 2);
  h.observe(-1.0);  // underflow
  h.observe(1.0);   // bucket 0
  h.observe(3.0);   // bucket 1
  h.observe(9.0);   // overflow

  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE mc_accepts counter"), std::string::npos);
  EXPECT_NE(text.find("mc_accepts 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE run_flatness gauge"), std::string::npos);
  EXPECT_NE(text.find("run_flatness 0.75"), std::string::npos);
  // Cumulative buckets: underflow folds into the first le bound.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 12"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 4"), std::string::npos);
}

TEST(Exposition, DuplicatePostSanitizationNamesThrow) {
  MetricsRegistry registry;
  registry.counter("mc.accepts").add(1);
  registry.counter("mc accepts").add(1);
  EXPECT_THROW(render_prometheus(registry.snapshot()), dt::Error);
}

TEST(Exposition, HealthOverlayEmitsWalkerAndPairSeries) {
  MetricsRegistry registry;
  HealthSnapshot health;
  health.active = true;
  health.uptime_s = 12.0;
  health.checkpoint_generation = 7;
  HealthSnapshot::Walker w;
  w.rank = 0;
  w.window = 0;
  w.flatness = 0.5;
  w.round_trips = 2;
  health.walkers.push_back(w);
  HealthSnapshot::Pair p;
  p.attempted = 10;
  p.accepted = 4;
  p.ewma = 0.4;
  health.pairs.push_back(p);
  health.stalled_walkers = 1;

  const std::string text =
      render_prometheus(registry.snapshot(), health);
  EXPECT_NE(text.find(
                "health_walker_flatness{rank=\"0\",window=\"0\"} 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("health_exchange_attempted{pair=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("health_exchange_acceptance_ewma{pair=\"0\"} 0.4"),
            std::string::npos);
  EXPECT_NE(text.find("health_stalled_walkers 1"), std::string::npos);
  EXPECT_NE(text.find("health_checkpoint_generation 7"), std::string::npos);
}

}  // namespace
}  // namespace dt::obs
