#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace dt::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Gauge, HoldsLastValue) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("g");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(FixedHistogram, BucketsAndOutOfRange) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 10.0, 5);
  h.observe(0.0);    // bucket 0 (lo is inclusive)
  h.observe(1.99);   // bucket 0
  h.observe(2.0);    // bucket 1
  h.observe(9.99);   // bucket 4
  h.observe(10.0);   // hi is exclusive -> overflow
  h.observe(-0.01);  // underflow
  h.observe(1e300);  // overflow

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 0u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(FixedHistogram, NanCountsAsUnderflow) {
  MetricsRegistry registry;
  FixedHistogram& h = registry.histogram("h", 0.0, 1.0, 2);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(0.5);
  registry.histogram("hist", 0.0, 1.0, 4).observe(0.5);

  const MetricsSnapshot a = registry.snapshot();
  const MetricsSnapshot b = registry.snapshot();

  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].first, "alpha");
  EXPECT_EQ(a.counters[0].second, 2u);
  EXPECT_EQ(a.counters[1].first, "zebra");
  ASSERT_EQ(a.gauges.size(), 1u);
  EXPECT_EQ(a.gauges[0].first, "mid");
  ASSERT_EQ(a.histograms.size(), 1u);
  EXPECT_EQ(a.histograms[0].name, "hist");
  ASSERT_EQ(a.histograms[0].buckets.size(), 4u);
  EXPECT_EQ(a.histograms[0].buckets[2], 1u);

  // Same state -> identical snapshots.
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  EXPECT_EQ(a.histograms[0].buckets, b.histograms[0].buckets);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.counter("c").add(5);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  // Re-created after reset, starting fresh.
  EXPECT_EQ(registry.counter("c").value(), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsFromEightThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry every few iterations to also
      // exercise the find-or-create lock, not just the atomic adds.
      Counter& c = registry.counter("shared");
      FixedHistogram& h = registry.histogram("lat", 0.0, 1.0, 10);
      for (int i = 0; i < kIncrements; ++i) {
        c.add();
        registry.counter("shared2").add(2);
        h.observe(static_cast<double>(i % 10) / 10.0);
        registry.gauge("last").set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.counter("shared2").value(),
            2u * static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.histogram("lat", 0.0, 1.0, 10).total(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const double last = registry.gauge("last").value();
  EXPECT_GE(last, 0.0);
  EXPECT_LT(last, static_cast<double>(kIncrements));
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace dt::obs
