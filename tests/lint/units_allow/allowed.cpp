// unit-discipline allowlist fixture: the violation below is suppressed
// by allow.txt (symbol-scoped to the parameter name), so the case must
// report nothing.

// Deliberate raw-double boundary twin (suppressed via allow.txt):
int bin_of(double energy);
