// Negative fixture: the sanctioned RNG path plus mentions of the banned
// tokens inside comments and strings, which the linter must ignore.
// A comment saying rand() or std::mt19937 is not a violation.
#include <cstdint>

const char* kDoc = "never call rand() or use std::random_device here";

std::uint64_t next_state(std::uint64_t s) {
  // xoshiro-style scramble, fed from the project RNG layer upstream.
  s ^= s << 13;
  s ^= s >> 7;
  return s * 0x2545F4914F6CDD1DULL;
}
