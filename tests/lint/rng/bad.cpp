// Positive fixture: every ad-hoc randomness source must be flagged.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;             // EXPECT-VIOLATION: rng-discipline
  std::mt19937 gen(rd());            // EXPECT-VIOLATION: rng-discipline
  std::srand(42);                    // EXPECT-VIOLATION: rng-discipline
  return std::rand() % 6;            // EXPECT-VIOLATION: rng-discipline
}
