// Positive fixture: wall-clock reads outside the timestamp layer.
#include <chrono>
#include <ctime>
#include <sys/time.h>

double wall_seconds() {
  const auto t0 =
      std::chrono::system_clock::now();  // EXPECT-VIOLATION: wallclock-discipline
  const std::time_t t = std::time(nullptr);  // EXPECT-VIOLATION: wallclock-discipline
  timeval tv{};
  gettimeofday(&tv, nullptr);  // EXPECT-VIOLATION: wallclock-discipline
  return static_cast<double>(t) +
         std::chrono::duration<double>(t0.time_since_epoch()).count();
}
