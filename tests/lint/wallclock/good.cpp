// Negative fixture: the steady clock is the sanctioned time source for
// measurement, and identifiers merely containing "time" are fine.
#include <chrono>

double elapsed_s(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start).count();
}

double runtime(double lifetime, double downtime) {
  return lifetime - downtime;
}
