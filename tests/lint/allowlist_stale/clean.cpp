// This file has no violations, so the allow.txt entry naming it is
// stale -- the linter must exit with a config error, not success.
int identity(int x) { return x; }
