#pragma once
// Never scanned: the cyclic layers.txt fails parsing first.
inline int a() { return 0; }
