#pragma once
// Clean module file: the allow.txt entry naming this file suppresses
// nothing, so the linter must fail with the stale-entry config error.
inline int commonx_clean() { return 0; }
