// unit-discipline stale-allowlist fixture: this file is clean, so the
// allow.txt entry naming it suppresses nothing and the linter must
// fail with a config error (the allowlist cannot rot).

void typed_only(int bins);
