// Positive fixture: console output from library code.
#include <cstdio>
#include <iostream>

void report(int n, double x) {
  std::printf("n=%d\n", n);  // EXPECT-VIOLATION: io-discipline
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", x);  // EXPECT-VIOLATION: io-discipline
  std::cout << buf << '\n';  // EXPECT-VIOLATION: io-discipline
  std::cerr << "done\n";  // EXPECT-VIOLATION: io-discipline
}
