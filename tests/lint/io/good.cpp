// Negative fixture: string streams and ostream parameters are fine;
// the ban is on the printf family and process-wide console streams.
#include <ostream>
#include <sstream>
#include <string>

std::string render(int n, double x) {
  std::ostringstream os;
  os << "n=" << n << " x=" << x;
  return std::move(os).str();
}

void save(std::ostream& os, const std::string& line) { os << line << '\n'; }
