// unit-discipline negative fixture: struct members, locals and
// non-domain parameter names stay raw double without complaint -- the
// rule matches *parameters* only (name directly followed by ',' or
// ')'), which is what keeps the serialisation/config/telemetry
// boundary legal.

struct ThermoRecord {
  double temperature = 0.0;  // config/telemetry member, not a parameter
  double internal_energy = 0.0;
  double log_z = 0.0;
};

void accumulate() {
  double energy = 0.0;  // local, not a parameter
  double log_q_ratio = 0.0;
  energy += log_q_ratio;
  (void)energy;
}

// Non-domain names stay raw.
void grid(double e_min, double width);

// Typed parameters are exactly the point.
namespace units {
class Energy;
}
void step(const units::Energy& current);
