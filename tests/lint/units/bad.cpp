// unit-discipline fixture: bare-double physics parameters must be the
// strong types of common/units.hpp.

// EXPECT-VIOLATION: unit-discipline   (double temperature)
void set_temperature(double temperature);

// EXPECT-VIOLATION: unit-discipline   (double delta_energy)
// EXPECT-VIOLATION: unit-discipline   (double log_q_ratio)
double acceptance(double delta_energy, double log_q_ratio);

// EXPECT-VIOLATION: unit-discipline   (double beta, trailing param)
int weight(int bin, double beta);
