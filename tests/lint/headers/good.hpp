// Negative fixture: properly guarded header.
#pragma once

inline int thrice(int x) { return 3 * x; }
