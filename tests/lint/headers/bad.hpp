// Positive fixture: header without #pragma once.
// EXPECT-VIOLATION: header-hygiene

inline int twice(int x) { return 2 * x; }
