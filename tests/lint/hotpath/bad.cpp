// Positive fixture: a hotlisted kernel that allocates and locks.
#include <mutex>
#include <vector>

std::mutex g_mutex;

float dirty_kernel(const float* x, int n) {
  std::vector<float> scratch(16);  // EXPECT-VIOLATION: hot-path-purity
  std::lock_guard<std::mutex> lock(g_mutex);  // EXPECT-VIOLATION: hot-path-purity
  auto* extra = new float[4];  // EXPECT-VIOLATION: hot-path-purity
  float acc = extra[0];
  delete[] extra;
  for (int i = 0; i < n; ++i) acc += x[i] + scratch[0];
  return acc;
}

// Same constructs outside any hotlisted function: not violations.
std::vector<float> warm_setup(int n) {
  std::vector<float> workspace(static_cast<unsigned>(n));
  return workspace;
}
