// Negative fixture: a hotlisted kernel working purely in caller-provided
// workspace -- reads/writes through pointers and references only.
#include <vector>

float clean_kernel(const float* x, float* workspace, int n) {
  float acc = 0.0F;
  for (int i = 0; i < n; ++i) {
    workspace[i] = x[i] * x[i];
    acc += workspace[i];
  }
  return acc;
}

void driver(std::vector<float>& workspace, const std::vector<float>& x) {
  clean_kernel(x.data(), workspace.data(), static_cast<int>(x.size()));
}
