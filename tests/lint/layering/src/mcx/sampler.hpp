#pragma once
// Declared edge mcx -> commonx: legal.
#include "commonx/util.hpp"
inline int mcx_sampler() { return commonx_util(); }
