#pragma once
// Layering leak: commonx is a leaf in layers.txt, so reaching up into
// mcx inverts the declared DAG.
// EXPECT-VIOLATION: module-layering
#include "mcx/sampler.hpp"
