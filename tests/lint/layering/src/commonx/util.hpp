#pragma once
// Leaf-module header: includes nothing, violates nothing.
inline int commonx_util() { return 1; }
