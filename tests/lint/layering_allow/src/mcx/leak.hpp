#pragma once
// Undeclared edge mcx -> commonx, suppressed by allow.txt (symbol is
// the target module), so this case must report nothing.
#include "commonx/util.hpp"
