// Allowlist fixture: both violations below are suppressed by entries in
// this case's allow.txt (one path-scoped, one symbol-scoped), so the
// case must report nothing. No EXPECT-VIOLATION markers on purpose.
#include <cstdio>
#include <vector>

void waived_report(double x) { std::printf("%g\n", x); }

float waived_kernel(const float* x, int n) {
  std::vector<float> scratch(4);
  float acc = scratch[0];
  for (int i = 0; i < n; ++i) acc += x[i];
  return acc;
}
