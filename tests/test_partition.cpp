#include "par/partition.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dt::par {
namespace {

TEST(Partition, SingleWindowCoversEverything) {
  const auto w = make_windows(100, 1, 0.75);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].lo_bin, 0);
  EXPECT_EQ(w[0].hi_bin, 99);
}

TEST(Partition, CoversFullRangeWithoutGaps) {
  for (int n_windows : {2, 3, 5, 8}) {
    const auto w = make_windows(500, n_windows, 0.75);
    ASSERT_EQ(static_cast<int>(w.size()), n_windows);
    EXPECT_EQ(w.front().lo_bin, 0);
    EXPECT_EQ(w.back().hi_bin, 499);
    for (std::size_t k = 1; k < w.size(); ++k) {
      EXPECT_LE(w[k].lo_bin, w[k - 1].hi_bin - 1)
          << "windows " << k - 1 << "/" << k << " for n=" << n_windows;
      EXPECT_GT(w[k].lo_bin, w[k - 1].lo_bin);
      EXPECT_GT(w[k].hi_bin, w[k - 1].hi_bin);
    }
  }
}

TEST(Partition, OverlapFractionApproximatelyHonored) {
  const auto w = make_windows(1000, 4, 0.75);
  for (std::size_t k = 1; k < w.size(); ++k) {
    const double shared = w[k - 1].hi_bin - w[k].lo_bin + 1;
    const double width = w[k].width();
    EXPECT_NEAR(shared / width, 0.75, 0.05);
  }
}

TEST(Partition, ZeroOverlapIsRejected) {
  // Replica exchange requires a shared region; disjoint tilings are a
  // configuration error, not a silent degradation.
  EXPECT_THROW((void)make_windows(100, 4, 0.0), dt::Error);
}

TEST(Partition, EqualWidthsWithinRounding) {
  const auto w = make_windows(730, 6, 0.6);
  for (std::size_t k = 1; k < w.size(); ++k)
    EXPECT_NEAR(w[k].width(), w[0].width(), 2);
}

TEST(Partition, RejectsInfeasibleGeometry) {
  EXPECT_THROW((void)make_windows(10, 8, 0.75), dt::Error);
  EXPECT_THROW((void)make_windows(100, 2, 1.0), dt::Error);
  EXPECT_THROW((void)make_windows(100, 2, -0.1), dt::Error);
  EXPECT_THROW((void)make_windows(0, 1, 0.5), dt::Error);
  EXPECT_THROW((void)make_windows(100, 0, 0.5), dt::Error);
}

}  // namespace
}  // namespace dt::par
