#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace dt {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro, ReproducibleForSameSeed) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256ss a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256ss a(7), b(7);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Philox, ReproducibleForSameKeyAndStream) {
  Philox4x32 a(1, 2), b(1, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, StreamsAreIndependent) {
  Philox4x32 a(1, 0), b(1, 1);
  int same = 0;
  for (int i = 0; i < 256; ++i)
    if (a() == b()) ++same;
  EXPECT_LE(same, 1);  // 32-bit collisions are possible but rare
}

TEST(Philox, SeekMatchesSequentialDraws) {
  Philox4x32 ref(9, 3);
  std::vector<std::uint32_t> seq(64);
  for (auto& v : seq) v = ref();

  for (std::uint64_t pos : {0ULL, 1ULL, 3ULL, 4ULL, 17ULL, 63ULL}) {
    Philox4x32 g(9, 3);
    g.seek(pos);
    EXPECT_EQ(g(), seq[pos]) << "position " << pos;
  }
}

TEST(Philox, BlockIsPureFunction) {
  const Philox4x32 g(5, 6);
  EXPECT_EQ(g.block(100, 0), g.block(100, 0));
  EXPECT_NE(g.block(100, 0), g.block(101, 0));
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  Xoshiro256ss g(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(g);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanNearHalf) {
  Xoshiro256ss g(3);
  double acc = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += uniform01(g);
  EXPECT_NEAR(acc / n, 0.5, 0.005);
}

TEST(Uniform01, WorksWith32BitGenerator) {
  Philox4x32 g(3, 0);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = uniform01(g);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc += u;
  }
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(UniformIndex, RespectsBounds) {
  Xoshiro256ss g(11);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_index(g, n), n);
    }
  }
}

TEST(UniformIndex, CoversAllValues) {
  Xoshiro256ss g(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(uniform_index(g, 10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(UniformIndex, ApproximatelyUniform) {
  Xoshiro256ss g(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[uniform_index(g, 8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, 5 * std::sqrt(n / 8.0));
}

TEST(Normal01, MeanAndVariance) {
  Xoshiro256ss g(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = normal01(g);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(StreamId, DistinctCoordinatesGiveDistinctStreams) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t a = 0; a < 10; ++a)
    for (std::uint64_t b = 0; b < 10; ++b)
      for (std::uint64_t c = 0; c < 3; ++c) ids.insert(stream_id(a, b, c));
  EXPECT_EQ(ids.size(), 300u);
}

}  // namespace
}  // namespace dt
