#include "mc/metropolis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "validate/oracle.hpp"

namespace dt::mc {
namespace {

using lattice::Lattice;
using lattice::LatticeType;

TEST(Metropolis, EnergyBookkeepingStaysExact) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = lattice::random_epi(4, 2, 0.2, 5);
  Rng rng(1, 0);
  auto cfg = lattice::random_configuration(lat, 4, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(0.1), Rng(1, 1));
  LocalSwapProposal prop(ham);
  sampler.run(prop, 50);
  EXPECT_NEAR(sampler.energy().value(), sampler.recompute_energy().value(), 1e-7);
}

TEST(Metropolis, SweepAttemptsEqualSiteCount) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 1);
  const auto ham = lattice::epi_ising(1.0);
  Rng rng(2, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(1.0), Rng(2, 1));
  LocalSwapProposal prop(ham);
  sampler.sweep(prop);
  EXPECT_EQ(sampler.stats().attempted,
            static_cast<std::uint64_t>(lat.num_sites()));
}

TEST(Metropolis, HighTemperatureAcceptsAlmostEverything) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 1);
  const auto ham = lattice::epi_ising(1.0);
  Rng rng(3, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(1e6), Rng(3, 1));
  LocalSwapProposal prop(ham);
  sampler.run(prop, 20);
  EXPECT_GT(sampler.stats().acceptance_rate(), 0.999);
}

TEST(Metropolis, LowTemperatureQuenchesTowardsOrder) {
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 1);
  // Antiferromagnetic Ising: B2 ground state reachable by swaps.
  const lattice::EpiHamiltonian ham(2, {{1.0, -1.0, -1.0, 1.0}});
  Rng rng(4, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(0.05), Rng(4, 1));
  const double e0 = sampler.energy().value();
  LocalSwapProposal prop(ham);
  sampler.run(prop, 200);
  EXPECT_LT(sampler.energy().value(), e0 - 0.2 * std::fabs(e0));
}

TEST(Metropolis, MeanEnergyMatchesExactEnumeration) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const double temperature = 12.0;

  // Exact canonical <E> from the shared enumeration oracle.
  const double mean_exact =
      validate::ExactOracle::get(
          ham, lat, validate::equiatomic_composition(lat.num_sites(), 2))
          ->thermo(units::Temperature(temperature))
          .internal_energy;

  Rng rng(5, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(temperature), Rng(5, 1));
  LocalSwapProposal prop(ham);
  sampler.run(prop, 200);  // burn-in
  double acc = 0;
  const int sweeps = 8000;
  for (int s = 0; s < sweeps; ++s) {
    sampler.sweep(prop);
    acc += sampler.energy().value();
  }
  EXPECT_NEAR(acc / sweeps, mean_exact, 0.25);
}

TEST(Metropolis, TemperatureUpdateValidated) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  Rng rng(6, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(1.0), Rng(6, 1));
  sampler.set_temperature(units::Temperature(2.5));
  EXPECT_DOUBLE_EQ(sampler.temperature().value(), 2.5);
  EXPECT_THROW(sampler.set_temperature(units::Temperature(0.0)), dt::Error);
  EXPECT_THROW((void)MetropolisSampler(ham, cfg, units::Temperature(-1.0), Rng(6, 2)),
               dt::Error);
}

TEST(Metropolis, ResetStatsClearsCounters) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  Rng rng(7, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(1.0), Rng(7, 1));
  LocalSwapProposal prop(ham);
  sampler.run(prop, 3);
  EXPECT_GT(sampler.stats().attempted, 0u);
  sampler.reset_stats();
  EXPECT_EQ(sampler.stats().attempted, 0u);
  EXPECT_EQ(sampler.stats().accepted, 0u);
}

TEST(Metropolis, OnSweepCallbackFires) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  Rng rng(8, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  MetropolisSampler sampler(ham, cfg, units::Temperature(1.0), Rng(8, 1));
  LocalSwapProposal prop(ham);
  std::int64_t calls = 0, last = -1;
  sampler.run(prop, 5, [&](std::int64_t s) {
    ++calls;
    last = s;
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(last, 4);
}

}  // namespace
}  // namespace dt::mc
