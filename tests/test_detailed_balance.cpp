// Oracle-tier detailed-balance acceptance tests: every registered
// proposal kernel -- local swap, block swap, mixture, and the VAE
// decode-ahead global move -- is measured against pi(x)P(x->x') ==
// pi(x')P(x'->x) on a fully enumerated state space, plus an exact audit
// of the VAE kernel's reverse-density bookkeeping via last_probs().
//
// Seeds derive from DT_TEST_SEED (see validate/stats.hpp); failures
// print the effective seed for reproduction.
#include "validate/balance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/vae_proposal.hpp"
#include "nn/vae.hpp"
#include "validate/stats.hpp"

namespace dt::validate {
namespace {

using lattice::Lattice;
using lattice::LatticeType;

// A dilute composition keeps the enumerated space small (C(16,2) = 120
// states) while the BCC shell structure still gives non-trivial spectra.
struct BalanceFixture {
  Lattice lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  lattice::EpiHamiltonian ham = lattice::epi_ising(1.0);
  std::vector<std::int32_t> comp = {14, 2};
  std::uint64_t seed = effective_test_seed(20260808);

  [[nodiscard]] BalanceOptions options() const {
    BalanceOptions o;
    o.temperature = 4.0;
    o.proposals_per_state = 600;
    // worst_z is a max over ~10^3 observed pairs; k = 6 keeps the
    // suite-level false-alarm rate below ~1e-5 per run.
    o.k_sigma = 6.0;
    return o;
  }
};

TEST(DetailedBalance, LocalSwapKernel) {
  BalanceFixture fx;
  SCOPED_TRACE(seed_trace(fx.seed));
  mc::LocalSwapProposal prop(fx.ham);
  mc::Rng rng(fx.seed, 101);
  const auto report = check_detailed_balance(prop, fx.ham, fx.lat, fx.comp,
                                             rng, fx.options());
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_EQ(report.n_off_space, 0u);
  EXPECT_GT(report.n_pairs, 100u);
}

TEST(DetailedBalance, BlockSwapKernel) {
  BalanceFixture fx;
  SCOPED_TRACE(seed_trace(fx.seed));
  mc::BlockSwapProposal prop(fx.ham, 1, 2);
  mc::Rng rng(fx.seed, 102);
  const auto report = check_detailed_balance(prop, fx.ham, fx.lat, fx.comp,
                                             rng, fx.options());
  EXPECT_TRUE(report.pass) << report.summary();
}

TEST(DetailedBalance, MixtureKernel) {
  BalanceFixture fx;
  SCOPED_TRACE(seed_trace(fx.seed));
  mc::LocalSwapProposal local(fx.ham);
  mc::BlockSwapProposal block(fx.ham, 1, 2);
  mc::MixtureProposal prop(local, block, 0.5);
  mc::Rng rng(fx.seed, 103);
  const auto report = check_detailed_balance(prop, fx.ham, fx.lat, fx.comp,
                                             rng, fx.options());
  EXPECT_TRUE(report.pass) << report.summary();
}

TEST(DetailedBalance, VaeDecodeAheadKernel) {
  BalanceFixture fx;
  SCOPED_TRACE(seed_trace(fx.seed));
  nn::VaeOptions vo;
  vo.n_sites = fx.lat.num_sites();
  vo.n_species = 2;
  vo.hidden = 24;
  vo.latent = 4;
  auto vae = std::make_shared<nn::Vae>(vo, fx.seed + 7);
  core::VaeProposal prop(fx.ham, vae);

  // Exact reverse-density audit: recompute both constrained sequential
  // densities from the decoder probabilities the kernel actually used
  // and cross-check its log_q_ratio bookkeeping to float precision.
  std::uint64_t audited = 0;
  double worst = 0.0;
  const ProposalAudit audit = [&](const mc::ProposalResult& res,
                                  std::span<const std::uint8_t> before,
                                  std::span<const std::uint8_t> after) {
    const auto probs = prop.last_probs();
    ASSERT_FALSE(probs.empty());
    const double lq_rev =
        core::VaeProposal::sequential_log_density(probs, before, 2).value();
    const double lq_fwd =
        core::VaeProposal::sequential_log_density(probs, after, 2).value();
    worst = std::max(
        worst, std::abs(res.log_q_ratio.value() - (lq_rev - lq_fwd)));
    ++audited;
  };

  auto opts = fx.options();
  // The global kernel spreads flow over all 120x119 pairs; more draws
  // per state keep enough pairs above the sample floor.
  opts.proposals_per_state = 1500;
  mc::Rng rng(fx.seed, 104);
  const auto report = check_detailed_balance(prop, fx.ham, fx.lat, fx.comp,
                                             rng, opts, audit);
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_GT(audited, 0u);
  EXPECT_LT(worst, 1e-5) << "log_q_ratio bookkeeping drifted";
  EXPECT_EQ(prop.stats().proposed, report.n_proposals);
}

// Negative control: a kernel that lies about its proposal density by a
// constant must be caught. This is the failure mode the checker exists
// for -- a silently-wrong q-correction in an asymmetric kernel.
class BiasedSwapProposal final : public mc::Proposal {
 public:
  explicit BiasedSwapProposal(const lattice::EpiHamiltonian& ham)
      : inner_(ham) {}
  mc::ProposalResult propose(lattice::Configuration& cfg,
                             units::Energy current_energy,
                             mc::Rng& rng) override {
    auto r = inner_.propose(cfg, current_energy, rng);
    if (r.valid) r.log_q_ratio += units::LogWeight(2.0);  // the lie
    return r;
  }
  void revert(lattice::Configuration& cfg) override { inner_.revert(cfg); }
  [[nodiscard]] std::string name() const override { return "biased-swap"; }

 private:
  mc::LocalSwapProposal inner_;
};

TEST(DetailedBalance, CatchesWrongQRatio) {
  BalanceFixture fx;
  SCOPED_TRACE(seed_trace(fx.seed));
  BiasedSwapProposal prop(fx.ham);
  mc::Rng rng(fx.seed, 105);
  auto opts = fx.options();
  // The violation's z grows as sqrt(samples); 8000/state puts the lie
  // far past the acceptance threshold at any seed.
  opts.proposals_per_state = 8000;
  const auto report = check_detailed_balance(prop, fx.ham, fx.lat, fx.comp,
                                             rng, opts);
  EXPECT_FALSE(report.pass) << report.summary();
  EXPECT_GT(report.worst_z, 8.0) << report.summary();
}

// Contract guards.
TEST(DetailedBalance, RejectsBadInputs) {
  BalanceFixture fx;
  mc::LocalSwapProposal prop(fx.ham);
  mc::Rng rng(1, 0);
  BalanceOptions opts;
  opts.temperature = -1.0;
  EXPECT_THROW(check_detailed_balance(prop, fx.ham, fx.lat, fx.comp, rng,
                                      opts),
               dt::Error);
  opts = BalanceOptions{};
  opts.max_states = 10;  // 120 states exceed this
  EXPECT_THROW(check_detailed_balance(prop, fx.ham, fx.lat, fx.comp, rng,
                                      opts),
               dt::Error);
  const std::vector<std::int32_t> wrong_sum = {1, 2};
  EXPECT_THROW(check_detailed_balance(prop, fx.ham, fx.lat, wrong_sum, rng,
                                      BalanceOptions{}),
               dt::Error);
}

}  // namespace
}  // namespace dt::validate
