// Checkpoint/restart of the Wang-Landau sampler: a restored run must be
// bit-exactly identical to the uninterrupted one (including the RNG
// stream position -- the counter-based generator makes this testable).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "mc/wang_landau.hpp"

namespace dt::mc {
namespace {

using lattice::Configuration;
using lattice::Lattice;
using lattice::LatticeType;

struct TestSystem {
  Lattice lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  lattice::EpiHamiltonian ham = lattice::epi_ising(1.0);
  EnergyGrid grid{-0.5, 64.5, 80};
};

WangLandauSampler make_sampler(const TestSystem& setup, Configuration& cfg,
                               std::uint64_t seed) {
  WangLandauOptions opts;
  opts.log_f_final = 1e-5;
  return WangLandauSampler(setup.ham, cfg, setup.grid, opts,
                           Rng(seed, 9));
}

TEST(PhiloxState, PositionRoundTrip) {
  Philox4x32 g(3, 4);
  EXPECT_EQ(g.position(), 0u);
  std::vector<std::uint32_t> draws(23);
  for (auto& d : draws) d = g();
  EXPECT_EQ(g.position(), 23u);

  Philox4x32 h(0, 0);
  h.set_key(g.key());
  h.seek(10);
  for (std::size_t i = 10; i < draws.size(); ++i)
    EXPECT_EQ(h(), draws[i]) << "draw " << i;
}

TEST(Checkpoint, ResumedRunIsBitExact) {
  const TestSystem setup;
  // Reference: 400 sweeps straight through.
  Rng init(1, 0);
  auto cfg_ref = lattice::random_configuration(setup.lat, 2, init);
  auto wl_ref = make_sampler(setup, cfg_ref, 77);
  LocalSwapProposal kernel_ref(setup.ham);
  wl_ref.advance(kernel_ref, 400);

  // Checkpointed: 150 sweeps, save, restore into a FRESH sampler with a
  // different initial configuration/seed, 250 more sweeps.
  Rng init2(1, 0);
  auto cfg_a = lattice::random_configuration(setup.lat, 2, init2);
  auto wl_a = make_sampler(setup, cfg_a, 77);
  LocalSwapProposal kernel_a(setup.ham);
  wl_a.advance(kernel_a, 150);
  std::stringstream checkpoint;
  wl_a.save_state(checkpoint);

  Rng init3(999, 0);
  auto cfg_b = lattice::random_configuration(setup.lat, 2, init3);
  auto wl_b = make_sampler(setup, cfg_b, 12345);  // seed overwritten by load
  wl_b.load_state(checkpoint);
  LocalSwapProposal kernel_b(setup.ham);
  wl_b.advance(kernel_b, 250);

  EXPECT_EQ(wl_ref.energy(), wl_b.energy());
  EXPECT_EQ(wl_ref.stats().sweeps, wl_b.stats().sweeps);
  EXPECT_EQ(wl_ref.stats().accepted, wl_b.stats().accepted);
  EXPECT_EQ(wl_ref.stats().attempted, wl_b.stats().attempted);
  EXPECT_EQ(wl_ref.log_f(), wl_b.log_f());
  for (std::int32_t b = 0; b < setup.grid.n_bins(); ++b) {
    ASSERT_EQ(wl_ref.dos().visited(b), wl_b.dos().visited(b)) << "bin " << b;
    if (wl_ref.dos().visited(b))
      ASSERT_EQ(wl_ref.dos().log_g(b), wl_b.dos().log_g(b)) << "bin " << b;
  }
  EXPECT_TRUE(wl_ref.configuration() == wl_b.configuration());
}

TEST(Checkpoint, SurvivesScheduleBoundaries) {
  // Save inside the 1/t phase and resume; convergence point must match.
  const TestSystem setup;
  Rng init(2, 0);
  auto cfg_ref = lattice::random_configuration(setup.lat, 2, init);
  auto wl_ref = make_sampler(setup, cfg_ref, 5);
  LocalSwapProposal kernel(setup.ham);
  const bool ref_conv = wl_ref.advance(kernel, 30000);

  Rng init2(2, 0);
  auto cfg_a = lattice::random_configuration(setup.lat, 2, init2);
  auto wl_a = make_sampler(setup, cfg_a, 5);
  wl_a.advance(kernel, 5000);
  std::stringstream checkpoint;
  wl_a.save_state(checkpoint);

  Rng init3(2, 0);
  auto cfg_b = lattice::random_configuration(setup.lat, 2, init3);
  auto wl_b = make_sampler(setup, cfg_b, 5);
  wl_b.load_state(checkpoint);
  const bool resumed_conv = wl_b.advance(kernel, 25000);

  EXPECT_EQ(ref_conv, resumed_conv);
  EXPECT_EQ(wl_ref.stats().sweeps, wl_b.stats().sweeps);
  EXPECT_EQ(wl_ref.log_f(), wl_b.log_f());
}

TEST(Checkpoint, RejectsMismatchedGeometry) {
  const TestSystem setup;
  Rng init(3, 0);
  auto cfg = lattice::random_configuration(setup.lat, 2, init);
  auto wl = make_sampler(setup, cfg, 1);
  LocalSwapProposal kernel(setup.ham);
  wl.advance(kernel, 10);
  std::stringstream checkpoint;
  wl.save_state(checkpoint);

  const EnergyGrid other_grid(-0.5, 64.5, 90);
  auto cfg2 = lattice::random_configuration(setup.lat, 2, init);
  WangLandauOptions opts;
  WangLandauSampler other(setup.ham, cfg2, other_grid, opts, Rng(1, 9));
  EXPECT_THROW(other.load_state(checkpoint), dt::Error);
}

TEST(Checkpoint, RejectsGarbage) {
  const TestSystem setup;
  Rng init(4, 0);
  auto cfg = lattice::random_configuration(setup.lat, 2, init);
  auto wl = make_sampler(setup, cfg, 1);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(wl.load_state(garbage), dt::Error);
}

TEST(Checkpoint, DetectsCorruptedPayload) {
  const TestSystem setup;
  Rng init(5, 0);
  auto cfg = lattice::random_configuration(setup.lat, 2, init);
  auto wl = make_sampler(setup, cfg, 2);
  LocalSwapProposal kernel(setup.ham);
  wl.advance(kernel, 20);
  std::stringstream checkpoint;
  wl.save_state(checkpoint);
  std::string blob = checkpoint.str();
  blob.resize(blob.size() / 2);  // truncate
  std::stringstream truncated(blob);
  auto cfg2 = lattice::random_configuration(setup.lat, 2, init);
  auto wl2 = make_sampler(setup, cfg2, 2);
  EXPECT_THROW(wl2.load_state(truncated), dt::Error);
}

}  // namespace
}  // namespace dt::mc
