#include "mc/parallel_tempering.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "validate/oracle.hpp"

namespace dt::mc {
namespace {

using lattice::Lattice;
using lattice::LatticeType;

TEST(GeometricLadder, EndpointsAndMonotone) {
  const auto ladder = geometric_ladder(0.1, 10.0, 5);
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_DOUBLE_EQ(ladder.front(), 0.1);
  EXPECT_NEAR(ladder.back(), 10.0, 1e-12);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
    // Geometric: constant ratio.
    EXPECT_NEAR(ladder[i] / ladder[i - 1], std::pow(100.0, 0.25), 1e-9);
  }
}

TEST(GeometricLadder, RejectsBadArguments) {
  EXPECT_THROW((void)geometric_ladder(0.0, 1.0, 3), dt::Error);
  EXPECT_THROW((void)geometric_ladder(2.0, 1.0, 3), dt::Error);
  EXPECT_THROW((void)geometric_ladder(1.0, 2.0, 1), dt::Error);
}

ParallelTemperingOptions small_ladder() {
  ParallelTemperingOptions opts;
  opts.temperatures = geometric_ladder(2.0, 30.0, 4);
  opts.exchange_interval = 5;
  opts.seed = 3;
  return opts;
}

TEST(ParallelTempering, ValidatesOptions) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  ParallelTemperingOptions opts;
  opts.temperatures = {1.0};
  EXPECT_THROW((void)ParallelTempering(ham, lat, 2, opts), dt::Error);
  opts.temperatures = {2.0, 1.0};
  EXPECT_THROW((void)ParallelTempering(ham, lat, 2, opts), dt::Error);
}

TEST(ParallelTempering, EnergyBookkeepingSurvivesExchanges) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  ParallelTempering pt(ham, lat, 2, small_ladder());
  pt.run(200);
  for (int i = 0; i < pt.n_replicas(); ++i) {
    EXPECT_NEAR(pt.replica(i).energy().value(), pt.replica(i).recompute_energy().value(),
                1e-7)
        << "replica " << i;
  }
}

TEST(ParallelTempering, ExchangesHappen) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  ParallelTempering pt(ham, lat, 2, small_ladder());
  pt.run(500);
  std::int64_t attempted = 0, accepted = 0;
  for (int i = 0; i + 1 < pt.n_replicas(); ++i) {
    attempted += pt.pair_stats(i).attempted;
    accepted += pt.pair_stats(i).accepted;
  }
  EXPECT_GT(attempted, 0);
  EXPECT_GT(accepted, 0);
  // A geometric ladder on a small system exchanges frequently.
  EXPECT_GT(static_cast<double>(accepted) / static_cast<double>(attempted),
            0.2);
  EXPECT_GT(pt.round_trips(), 0);
}

TEST(ParallelTempering, ColdReplicaOrdersHotReplicaDisorders) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 1);
  // Antiferromagnetic: ground state is B2-ordered.
  const lattice::EpiHamiltonian ham(2, {{1.0, -1.0, -1.0, 1.0}});
  ParallelTemperingOptions opts;
  opts.temperatures = geometric_ladder(0.5, 50.0, 5);
  opts.seed = 7;
  ParallelTempering pt(ham, lat, 2, opts);
  pt.run(400);
  EXPECT_LT(pt.replica(0).energy(), pt.replica(4).energy());
  // Cold replica near the ground state (E_min = -bonds).
  const double e_min = -static_cast<double>(ham.bond_count(lat));
  EXPECT_LT(pt.replica(0).energy().value(), 0.6 * e_min);
}

// The decisive check: PT sampling of the enumerable Ising system matches
// exact Boltzmann marginals at EVERY ladder temperature simultaneously.
TEST(ParallelTempering, MatchesExactBoltzmannAtAllTemperatures) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);

  ParallelTemperingOptions opts;
  opts.temperatures = {6.0, 12.0, 24.0};
  opts.exchange_interval = 5;
  opts.seed = 11;
  ParallelTempering pt(ham, lat, 2, opts);

  // Exact Boltzmann level marginals from the shared enumeration oracle.
  const auto oracle = validate::ExactOracle::get(
      ham, lat, validate::equiatomic_composition(lat.num_sites(), 2));
  const auto& levels = oracle->levels();

  pt.run(200);  // burn-in
  std::vector<std::map<long long, double>> counts(3);
  std::vector<double> totals(3, 0.0);
  pt.run(20000, [&](int replica, MetropolisSampler& sampler) {
    counts[static_cast<std::size_t>(replica)]
          [std::llround(4 * sampler.energy().value())] += 1.0;
    totals[static_cast<std::size_t>(replica)] += 1.0;
  });

  for (std::size_t k = 0; k < 3; ++k) {
    const auto probs = oracle->level_probabilities(
        units::Temperature(opts.temperatures[k]));
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const long long key = std::llround(4 * levels[i].energy);
      const double got =
          (counts[k].count(key) ? counts[k][key] : 0.0) / totals[k];
      EXPECT_NEAR(got, probs[i], 0.02)
          << "T=" << opts.temperatures[k] << " level " << levels[i].energy;
    }
  }
}

TEST(ParallelTempering, DeterministicForSeed) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  auto run = [&] {
    ParallelTempering pt(ham, lat, 2, small_ladder());
    pt.run(100);
    std::vector<double> energies;
    for (int i = 0; i < pt.n_replicas(); ++i)
      energies.push_back(pt.replica(i).energy().value());
    return energies;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dt::mc
