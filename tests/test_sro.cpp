#include "lattice/sro.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace dt::lattice {
namespace {

TEST(WarrenCowley, B2OrderIsMinusOneOffDiagonal) {
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 2);
  const auto cfg = ordered_b2(lat, 2);
  const SroMatrix m = warren_cowley(cfg, 0);
  // Perfect B2: every first-shell neighbour is the other species.
  // alpha(a,b) = 1 - P(b|a)/c_b = 1 - 1/0.5 = -1 for a != b,
  // and 1 - 0 = +1 for a == b.
  EXPECT_NEAR(m.at(0, 1), -1.0, 1e-12);
  EXPECT_NEAR(m.at(1, 0), -1.0, 1e-12);
  EXPECT_NEAR(m.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(m.at(1, 1), 1.0, 1e-12);
}

TEST(WarrenCowley, B2SecondShellIsClustered) {
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 2);
  const auto cfg = ordered_b2(lat, 2);
  const SroMatrix m = warren_cowley(cfg, 1);
  // Second shell (<100>) connects same sublattice: all like pairs.
  EXPECT_NEAR(m.at(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(m.at(0, 0), -1.0, 1e-12);
}

TEST(WarrenCowley, RandomSolutionNearZero) {
  const auto lat = Lattice::create(LatticeType::kBCC, 6, 6, 6, 1);
  Xoshiro256ss rng(3);
  // Average over several random configurations: alpha -> 0.
  double acc = 0;
  const int reps = 20;
  for (int r = 0; r < reps; ++r) {
    const auto cfg = random_configuration(lat, 4, rng);
    const SroMatrix m = warren_cowley(cfg, 0);
    acc += m.at(0, 1);
  }
  EXPECT_NEAR(acc / reps, 0.0, 0.02);
}

TEST(WarrenCowley, RowIdentityHolds) {
  // sum_b c_b alpha(a,b) = 0 identically (conservation of neighbours).
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 2);
  Xoshiro256ss rng(9);
  const auto cfg = random_configuration(lat, 4, rng);
  const double n = cfg.num_sites();
  for (int shell = 0; shell < 2; ++shell) {
    const SroMatrix m = warren_cowley(cfg, shell);
    for (int a = 0; a < 4; ++a) {
      double acc = 0;
      for (int b = 0; b < 4; ++b) {
        const double c_b =
            cfg.composition()[static_cast<std::size_t>(b)] / n;
        acc += c_b * m.at(a, b);
      }
      EXPECT_NEAR(acc, 0.0, 1e-10);
    }
  }
}

TEST(SroMagnitude, ZeroForRandomOneForB2) {
  const auto lat = Lattice::create(LatticeType::kBCC, 6, 6, 6, 1);
  const auto ordered = ordered_b2(lat, 2);
  EXPECT_NEAR(sro_magnitude(ordered, 0), 1.0, 1e-12);

  Xoshiro256ss rng(4);
  const auto random_cfg = random_configuration(lat, 2, rng);
  EXPECT_LT(sro_magnitude(random_cfg, 0), 0.15);
}

TEST(SroMagnitude, MonotoneUnderPartialDisorder) {
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 1);
  auto cfg = ordered_b2(lat, 2);
  const double full_order = sro_magnitude(cfg, 0);
  // Scramble a fraction of sites.
  Xoshiro256ss rng(5);
  for (int k = 0; k < 30; ++k) {
    const auto a = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    const auto b = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    cfg.swap(a, b);
  }
  const double partial = sro_magnitude(cfg, 0);
  EXPECT_LT(partial, full_order);
  EXPECT_GT(partial, 0.1);
}

TEST(WarrenCowley, MissingSpeciesYieldsZeroRows) {
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 1);
  const Configuration cfg(lat, 3);  // species 1, 2 absent
  const SroMatrix m = warren_cowley(cfg, 0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

}  // namespace
}  // namespace dt::lattice
