#include "validate/oracle.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "mc/thermo.hpp"

namespace dt::validate {
namespace {

using lattice::Configuration;
using lattice::Lattice;
using lattice::LatticeType;

// Independent reference implementation: bitmask enumeration of the
// 16-site BCC Ising model at half filling. Deliberately NOT the oracle's
// multinomial iteration, so the two agree only if both are right.
std::map<long long, double> bitmask_levels(const Lattice& lat,
                                           const lattice::EpiHamiltonian& ham) {
  const int n = lat.num_sites();
  std::map<long long, double> levels;  // 4*E -> count
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if (std::popcount(mask) != n / 2) continue;
    Configuration cfg(lat, 2);
    for (int i = 0; i < n; ++i)
      cfg.set(i, (mask >> static_cast<unsigned>(i)) & 1u ? 1 : 0);
    levels[std::llround(4 * ham.total_energy(cfg))] += 1.0;
  }
  return levels;
}

OracleOptions no_cache() {
  OracleOptions o;
  o.cache_dir = "-";
  return o;
}

TEST(ExactOracle, MatchesIndependentBitmaskEnumeration) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const auto comp = equiatomic_composition(lat.num_sites(), 2);
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, no_cache());

  const auto ref = bitmask_levels(lat, ham);
  ASSERT_EQ(oracle.levels().size(), ref.size());
  EXPECT_DOUBLE_EQ(oracle.total_states(), 12870.0);  // C(16, 8)
  for (const auto& [k, count] : ref) {
    const double e = static_cast<double>(k) / 4.0;
    EXPECT_NEAR(oracle.log_g_at(units::Energy(e)).value(), std::log(count), 1e-12) << "E=" << e;
  }
  EXPECT_DOUBLE_EQ(oracle.e_min(), ref.begin()->first / 4.0);
  EXPECT_DOUBLE_EQ(oracle.e_max(), ref.rbegin()->first / 4.0);
  EXPECT_TRUE(
      std::isinf(oracle.log_g_at(units::Energy(oracle.e_min() - 1.0)).value()));
}

TEST(ExactOracle, MultiSpeciesStateCountIsMultinomial) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::random_epi(4, 1, 0.1, 3);
  const auto comp = equiatomic_composition(lat.num_sites(), 4);
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, no_cache());
  // 16! / (4!)^4 = 63063000.
  double total = 0.0;
  for (const auto& level : oracle.levels()) total += level.count;
  EXPECT_DOUBLE_EQ(total, oracle.total_states());
  EXPECT_DOUBLE_EQ(oracle.total_states(), 63063000.0);
  EXPECT_NEAR(oracle.log_total_states(), std::log(63063000.0), 1e-12);
}

TEST(ExactOracle, ThermoMatchesGridThermoOnFineGrid) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const auto comp = equiatomic_composition(lat.num_sites(), 2);
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, no_cache());

  // A grid fine enough that every level has its own bin reproduces the
  // level-sum thermo exactly.
  const auto grid = oracle.make_grid(2000, 0.1);
  const auto dos = oracle.to_dos(grid);
  for (const double t : {0.5, 1.0, 2.0, 8.0}) {
    const auto exact = oracle.thermo(units::Temperature(t));
    const auto binned = mc::evaluate_thermo(dos, units::Temperature(t));
    EXPECT_NEAR(exact.internal_energy, binned.internal_energy, 5e-2) << t;
    EXPECT_NEAR(exact.specific_heat, binned.specific_heat, 5e-2) << t;
    EXPECT_NEAR(exact.free_energy, binned.free_energy, 5e-2) << t;
  }
  const auto scan = oracle.thermo_scan({0.5, 1.0});
  ASSERT_EQ(scan.size(), 2u);
  EXPECT_DOUBLE_EQ(scan[0].internal_energy,
                   oracle.thermo(units::Temperature(0.5)).internal_energy);
}

TEST(ExactOracle, LevelProbabilitiesAreBoltzmann) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const auto comp = equiatomic_composition(lat.num_sites(), 2);
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, no_cache());

  const auto probs = oracle.level_probabilities(units::Temperature(2.0));
  ASSERT_EQ(probs.size(), oracle.levels().size());
  double sum = 0.0;
  for (const double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // As T -> 0 the ground level takes all the weight.
  const auto cold = oracle.level_probabilities(units::Temperature(0.05));
  EXPECT_GT(cold.front(), 0.999);
}

TEST(ExactOracle, MeanSroInterpolatesLevelAverages) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const auto comp = equiatomic_composition(lat.num_sites(), 2);
  OracleOptions opts = no_cache();
  opts.with_sro = true;
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, opts);
  ASSERT_TRUE(oracle.has_sro());

  // <SRO>(T) is a probability-weighted average of per-level averages: it
  // must lie within their range at any T, and in the T -> 0 limit it
  // converges to the ground level's own average.
  double lo = 1e300, hi = -1e300;
  for (const auto& level : oracle.levels()) {
    const double avg = level.sro_sum / level.count;
    lo = std::min(lo, avg);
    hi = std::max(hi, avg);
  }
  const double warm = oracle.mean_sro(units::Temperature(50.0));
  const double cold = oracle.mean_sro(units::Temperature(0.05));
  EXPECT_GE(warm, lo);
  EXPECT_LE(warm, hi);
  const auto& ground = oracle.levels().front();
  EXPECT_NEAR(cold, ground.sro_sum / ground.count, 1e-6);

  // Without with_sro the accessor must refuse.
  const auto plain = ExactOracle::enumerate(ham, lat, comp, no_cache());
  EXPECT_THROW((void)plain.mean_sro(units::Temperature(1.0)), dt::Error);
}

TEST(ExactOracle, ToDosConservesTotalStates) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const auto comp = equiatomic_composition(lat.num_sites(), 2);
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, no_cache());
  const auto grid = oracle.make_grid(60);
  const auto dos = oracle.to_dos(grid);
  double total = 0.0;
  for (std::int32_t b = 0; b < grid.n_bins(); ++b)
    if (dos.visited(b)) total += std::exp(dos.log_g(b).value());
  EXPECT_NEAR(total, oracle.total_states(), 1e-6 * oracle.total_states());

  // A grid that misses part of the spectrum must throw, not truncate.
  const mc::EnergyGrid narrow(oracle.e_min() + 1.0, oracle.e_max() + 1.0, 30);
  EXPECT_THROW(oracle.to_dos(narrow), dt::Error);
}

TEST(ExactOracle, SaveLoadRoundTripsBitExactly) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const auto comp = equiatomic_composition(lat.num_sites(), 2);
  OracleOptions opts = no_cache();
  opts.with_sro = true;
  const auto oracle = ExactOracle::enumerate(ham, lat, comp, opts);

  std::stringstream ss;
  oracle.save(ss);
  const auto loaded = ExactOracle::load(ss);
  EXPECT_EQ(loaded.key(), oracle.key());
  EXPECT_EQ(loaded.has_sro(), oracle.has_sro());
  ASSERT_EQ(loaded.levels().size(), oracle.levels().size());
  for (std::size_t i = 0; i < oracle.levels().size(); ++i) {
    EXPECT_EQ(loaded.levels()[i].energy, oracle.levels()[i].energy);
    EXPECT_EQ(loaded.levels()[i].count, oracle.levels()[i].count);
    EXPECT_EQ(loaded.levels()[i].sro_sum, oracle.levels()[i].sro_sum);
  }
  EXPECT_EQ(loaded.e_min(), oracle.e_min());
  EXPECT_EQ(loaded.e_max(), oracle.e_max());
  EXPECT_DOUBLE_EQ(loaded.total_states(), oracle.total_states());
}

TEST(ExactOracle, LoadRejectsCorruptStreams) {
  std::stringstream bad_magic("not-an-oracle v9\n");
  EXPECT_THROW(ExactOracle::load(bad_magic), dt::Error);
  std::stringstream truncated(
      "dt-oracle v1\nkey 0000000000000001 quantum 1 with_sro 0\nlevels 3\n"
      "0 2 0\n");
  EXPECT_THROW(ExactOracle::load(truncated), dt::Error);
}

TEST(ExactOracle, GetMemoizesAndUsesDiskCache) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.25);  // unique J: fresh cache key
  const auto comp = equiatomic_composition(lat.num_sites(), 2);

  const auto dir = std::filesystem::temp_directory_path() /
                   "dt-oracle-test-cache";
  std::filesystem::remove_all(dir);

  // Pre-seed the golden file exactly as get() would write it, so the
  // first get() in this process exercises the disk-load branch.
  OracleOptions opts;
  opts.cache_dir = dir.string();
  const auto fresh = ExactOracle::enumerate(ham, lat, comp, opts);
  std::filesystem::create_directories(dir);
  char name[40];
  std::snprintf(name, sizeof name, "oracle-%016llx.txt",
                static_cast<unsigned long long>(fresh.key()));
  {
    std::ofstream out(dir / name);
    fresh.save(out);
  }

  const auto cached = ExactOracle::get(ham, lat, comp, opts);
  EXPECT_TRUE(cached->from_cache());
  EXPECT_EQ(cached->key(), fresh.key());
  ASSERT_EQ(cached->levels().size(), fresh.levels().size());
  for (std::size_t i = 0; i < fresh.levels().size(); ++i)
    EXPECT_EQ(cached->levels()[i].count, fresh.levels()[i].count);

  // Second get(): the in-process memo returns the same instance.
  const auto again = ExactOracle::get(ham, lat, comp, opts);
  EXPECT_EQ(again.get(), cached.get());

  // A corrupt golden file is regenerated, not trusted.
  const auto ham2 = lattice::epi_ising(1.5);
  const auto fresh2 = ExactOracle::enumerate(ham2, lat, comp, opts);
  std::snprintf(name, sizeof name, "oracle-%016llx.txt",
                static_cast<unsigned long long>(fresh2.key()));
  {
    std::ofstream out(dir / name);
    out << "garbage\n";
  }
  const auto regen = ExactOracle::get(ham2, lat, comp, opts);
  EXPECT_FALSE(regen->from_cache());
  EXPECT_DOUBLE_EQ(regen->total_states(), 12870.0);

  std::filesystem::remove_all(dir);
}

TEST(ExactOracle, RejectsBadInputs) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const std::vector<std::int32_t> short_comp = {16};
  EXPECT_THROW(ExactOracle::enumerate(ham, lat, short_comp, no_cache()),
               dt::Error);
  const std::vector<std::int32_t> wrong_sum = {7, 8};
  EXPECT_THROW(ExactOracle::enumerate(ham, lat, wrong_sum, no_cache()),
               dt::Error);
  // A 128-site lattice is far beyond enumeration: refuse up front.
  const auto big = Lattice::create(LatticeType::kBCC, 4, 4, 4, 1);
  const auto big_comp = equiatomic_composition(big.num_sites(), 2);
  EXPECT_THROW(ExactOracle::enumerate(ham, big, big_comp, no_cache()),
               dt::Error);
}

TEST(EquiatomicComposition, SplitsEvenlyWithRemainderFirst) {
  EXPECT_EQ(equiatomic_composition(16, 2),
            (std::vector<std::int32_t>{8, 8}));
  EXPECT_EQ(equiatomic_composition(15, 2),
            (std::vector<std::int32_t>{8, 7}));
  EXPECT_EQ(equiatomic_composition(16, 3),
            (std::vector<std::int32_t>{6, 5, 5}));
}

}  // namespace
}  // namespace dt::validate
