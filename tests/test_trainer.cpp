#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace dt::nn {
namespace {

VaeOptions small_opts() {
  VaeOptions o;
  o.n_sites = 16;
  o.n_species = 4;
  o.hidden = 24;
  o.latent = 4;
  return o;
}

std::vector<std::uint8_t> striped_sample(int offset) {
  std::vector<std::uint8_t> occ(16);
  for (int i = 0; i < 16; ++i)
    occ[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((i + offset) % 4);
  return occ;
}

TEST(ConfigDataset, AddAndRetrieve) {
  ConfigDataset ds(16, 10);
  Xoshiro256ss rng(1);
  ds.add(striped_sample(0), rng);
  ds.add(striped_sample(1), rng);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.sample(0)[0], 0);
  EXPECT_EQ(ds.sample(1)[0], 1);
}

TEST(ConfigDataset, RejectsWrongSize) {
  ConfigDataset ds(16, 10);
  Xoshiro256ss rng(1);
  std::vector<std::uint8_t> bad(8, 0);
  EXPECT_THROW(ds.add(bad, rng), dt::Error);
  EXPECT_THROW((void)ds.sample(0), dt::Error);
}

TEST(ConfigDataset, ReservoirCapsCapacity) {
  ConfigDataset ds(16, 5);
  Xoshiro256ss rng(2);
  for (int i = 0; i < 100; ++i) ds.add(striped_sample(i), rng);
  EXPECT_EQ(ds.size(), 5u);
}

TEST(ConfigDataset, ReservoirKeepsLateSamplesSometimes) {
  // Over the stream 0..99 with capacity 5, the retained set should not be
  // simply the first five (reservoir replaces uniformly).
  ConfigDataset ds(16, 5);
  Xoshiro256ss rng(3);
  for (int i = 0; i < 100; ++i) ds.add(striped_sample(i), rng);
  std::set<std::uint8_t> first_sites;
  for (std::size_t k = 0; k < ds.size(); ++k)
    first_sites.insert(ds.sample(k)[0]);
  bool has_late = false;
  for (std::size_t k = 0; k < ds.size(); ++k)
    if (ds.sample(k)[1] != striped_sample(static_cast<int>(k))[1])
      has_late = true;
  (void)first_sites;
  EXPECT_TRUE(has_late);
}

TEST(ConfigDataset, ClearResets) {
  ConfigDataset ds(16, 5);
  Xoshiro256ss rng(4);
  ds.add(striped_sample(0), rng);
  ds.clear();
  EXPECT_EQ(ds.size(), 0u);
}

TEST(Trainer, FitReducesLoss) {
  Vae vae(small_opts(), 5);
  TrainOptions to;
  to.epochs = 30;
  to.batch_size = 8;
  to.learning_rate = 5e-3f;
  Trainer trainer(vae, to);

  ConfigDataset ds(16, 64);
  Xoshiro256ss rng(6);
  for (int i = 0; i < 32; ++i) ds.add(striped_sample(i % 4), rng);

  const auto report = trainer.fit(ds);
  ASSERT_EQ(report.epoch_loss.size(), 30u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front() * 0.8f);
  EXPECT_EQ(report.samples_seen, 30 * 32);
  EXPECT_GT(report.final_reconstruction, 0.0f);
}

TEST(Trainer, EmptyDatasetThrows) {
  Vae vae(small_opts(), 7);
  Trainer trainer(vae, TrainOptions{});
  ConfigDataset ds(16, 4);
  EXPECT_THROW((void)trainer.fit(ds), dt::Error);
}

TEST(Trainer, MismatchedSitesThrow) {
  Vae vae(small_opts(), 8);
  Trainer trainer(vae, TrainOptions{});
  ConfigDataset ds(8, 4);
  Xoshiro256ss rng(9);
  ds.add(std::vector<std::uint8_t>(8, 0), rng);
  EXPECT_THROW((void)trainer.fit(ds), dt::Error);
}

TEST(Trainer, DeferredStepLeavesWeightsUntouched) {
  Vae vae(small_opts(), 10);
  TrainOptions to;
  Trainer trainer(vae, to);
  const auto before = vae.parameters()[0].data();
  const auto occ = striped_sample(0);
  (void)trainer.train_batch(occ, 1, /*defer_optimizer_step=*/true);
  EXPECT_EQ(vae.parameters()[0].data(), before);
  trainer.apply_step();
  EXPECT_NE(vae.parameters()[0].data(), before);
}

TEST(Trainer, TrainBatchValidatesSize) {
  Vae vae(small_opts(), 11);
  Trainer trainer(vae, TrainOptions{});
  std::vector<std::uint8_t> occ(10, 0);  // not batch*16
  EXPECT_THROW((void)trainer.train_batch(occ, 1), dt::Error);
}

TEST(Trainer, DeterministicForSeed) {
  auto run = [] {
    Vae vae(small_opts(), 12);
    TrainOptions to;
    to.epochs = 3;
    to.seed = 99;
    Trainer trainer(vae, to);
    ConfigDataset ds(16, 16);
    Xoshiro256ss rng(13);
    for (int i = 0; i < 16; ++i) ds.add(striped_sample(i), rng);
    return trainer.fit(ds).epoch_loss;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dt::nn
