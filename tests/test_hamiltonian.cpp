#include "lattice/hamiltonian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dt::lattice {
namespace {

TEST(EpiHamiltonian, RejectsAsymmetricCouplings) {
  std::vector<double> v = {0.0, 1.0, 2.0, 0.0};  // V(0,1) != V(1,0)
  EXPECT_THROW((void)EpiHamiltonian(2, {v}), dt::Error);
}

TEST(EpiHamiltonian, RejectsWrongMatrixSize) {
  EXPECT_THROW((void)EpiHamiltonian(3, {{0.0, 0.0, 0.0, 0.0}}), dt::Error);
}

TEST(EpiHamiltonian, CouplingBounds) {
  const auto ham = epi_ising(2.0);
  EXPECT_DOUBLE_EQ(ham.min_coupling(), -2.0);
  EXPECT_DOUBLE_EQ(ham.max_coupling(), 2.0);
}

TEST(EpiHamiltonian, IsingGroundStateEnergy) {
  // Ferromagnetic single-species limit: all bonds at -J.
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 1);
  const auto ham = epi_ising(1.0);
  Configuration cfg(lat, 2);  // all species 0
  const std::int64_t bonds = ham.bond_count(lat);
  EXPECT_EQ(bonds, static_cast<std::int64_t>(lat.num_sites()) * 8 / 2);
  EXPECT_NEAR(ham.total_energy(cfg), -static_cast<double>(bonds), 1e-9);
}

TEST(EpiHamiltonian, IsingB2IsAntiferroGroundState) {
  const auto lat = Lattice::create(LatticeType::kBCC, 4, 4, 4, 1);
  // Antiferromagnetic: like pairs +J, unlike -J.
  const EpiHamiltonian ham(2, {{1.0, -1.0, -1.0, 1.0}});
  const auto cfg = ordered_b2(lat, 2);
  EXPECT_NEAR(ham.total_energy(cfg),
              -static_cast<double>(ham.bond_count(lat)), 1e-9);
}

TEST(EpiHamiltonian, SiteEnergySumsToTwiceTotal) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = random_epi(4, 2, 0.1, 11);
  Xoshiro256ss rng(5);
  const auto cfg = random_configuration(lat, 4, rng);
  double site_sum = 0;
  for (std::int32_t i = 0; i < lat.num_sites(); ++i)
    site_sum += ham.site_energy(cfg, i);
  EXPECT_NEAR(site_sum, 2.0 * ham.total_energy(cfg), 1e-8);
}

TEST(EpiHamiltonian, SwapDeltaMatchesRecompute) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = random_epi(4, 2, 0.1, 7);
  Xoshiro256ss rng(6);
  auto cfg = random_configuration(lat, 4, rng);
  double energy = ham.total_energy(cfg);

  // Random swaps including neighbouring pairs; ΔE must match recompute.
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    const auto b = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    const double delta = ham.swap_delta(cfg, a, b);
    cfg.swap(a, b);
    const double fresh = ham.total_energy(cfg);
    ASSERT_NEAR(fresh, energy + delta, 1e-8)
        << "trial " << trial << " a=" << a << " b=" << b;
    energy = fresh;
  }
}

TEST(EpiHamiltonian, SwapDeltaNeighbourPairExact) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = random_epi(3, 2, 0.2, 9);
  Xoshiro256ss rng(8);
  auto cfg = random_configuration(lat, 3, rng);

  // Exercise explicitly-neighbouring pairs on both shells.
  for (std::int32_t site = 0; site < lat.num_sites(); site += 5) {
    for (int s = 0; s < 2; ++s) {
      const auto nb = lat.neighbors(site, s)[0];
      const double e0 = ham.total_energy(cfg);
      const double delta = ham.swap_delta(cfg, site, nb);
      cfg.swap(site, nb);
      EXPECT_NEAR(ham.total_energy(cfg), e0 + delta, 1e-8);
      cfg.swap(site, nb);  // restore
    }
  }
}

TEST(EpiHamiltonian, SwapDeltaTrivialCases) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 1);
  const auto ham = epi_ising(1.0);
  Xoshiro256ss rng(10);
  const auto cfg = random_configuration(lat, 2, rng);
  EXPECT_DOUBLE_EQ(ham.swap_delta(cfg, 4, 4), 0.0);
  // Same-species pair.
  std::int32_t a = 0, b = 1;
  while (cfg.at(a) != cfg.at(b)) ++b;
  EXPECT_DOUBLE_EQ(ham.swap_delta(cfg, a, b), 0.0);
}

TEST(EpiHamiltonian, SetDeltaMatchesRecompute) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = random_epi(4, 2, 0.15, 13);
  Xoshiro256ss rng(12);
  auto cfg = random_configuration(lat, 4, rng);
  for (int trial = 0; trial < 200; ++trial) {
    const auto site = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    const auto species =
        static_cast<Species>(uniform_index(rng, 4));
    const double e0 = ham.total_energy(cfg);
    const double delta = ham.set_delta(cfg, site, species);
    cfg.set(site, species);
    ASSERT_NEAR(ham.total_energy(cfg), e0 + delta, 1e-8);
  }
}

TEST(EpiHamiltonian, SwapDeltaExactOnWrappingSupercell) {
  // Regression: on a 2x2x2 BCC supercell the second shell's +x and -x
  // offsets wrap onto the same site, giving neighbour multiplicity 2.
  // The swap correction must be applied once per bond, not once per pair.
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 2);
  EXPECT_EQ(lat.neighbor_multiplicity(0, lat.neighbors(0, 1)[0], 1), 2);

  const auto ham = epi_nbmotaw();
  Xoshiro256ss rng(31);
  auto cfg = random_configuration(lat, 4, rng);
  double energy = ham.total_energy(cfg);
  for (int t = 0; t < 500; ++t) {
    const auto a = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    const auto b = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    energy += ham.swap_delta(cfg, a, b);
    cfg.swap(a, b);
    ASSERT_NEAR(energy, ham.total_energy(cfg), 1e-8) << "trial " << t;
  }
}

TEST(EpiHamiltonian, EnergyBoundsHold) {
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = random_epi(4, 2, 0.3, 21);
  Xoshiro256ss rng(14);
  const double bonds = static_cast<double>(ham.bond_count(lat));
  for (int trial = 0; trial < 20; ++trial) {
    const auto cfg = random_configuration(lat, 4, rng);
    const double e = ham.total_energy(cfg);
    EXPECT_GE(e, bonds * ham.min_coupling() - 1e-9);
    EXPECT_LE(e, bonds * ham.max_coupling() + 1e-9);
  }
}

TEST(EpiHamiltonian, ParallelEnergyMatchesSerial) {
  // The OpenMP path must agree with the Kahan-summed serial path to
  // floating-point reduction tolerance, on lattices big and small.
  for (const int cells : {3, 8}) {
    const auto lat = Lattice::create(LatticeType::kBCC, cells, cells, cells, 2);
    const auto ham = random_epi(4, 2, 0.2, 77);
    Xoshiro256ss rng(static_cast<std::uint64_t>(cells));
    const auto cfg = random_configuration(lat, 4, rng);
    const double serial = ham.total_energy_serial(cfg);
    const double parallel = ham.total_energy_parallel(cfg);
    EXPECT_NEAR(parallel, serial, 1e-8 * std::max(1.0, std::abs(serial)))
        << "cells=" << cells;
    EXPECT_NEAR(ham.total_energy(cfg), serial,
                1e-8 * std::max(1.0, std::abs(serial)));
  }
}

TEST(EpiHamiltonian, NbMoTaWPresetShape) {
  const auto ham = epi_nbmotaw();
  EXPECT_EQ(ham.n_species(), 4);
  EXPECT_EQ(ham.n_shells(), 2);
  // Mo-Ta first-shell attraction is the dominant ordering interaction.
  double strongest = 0.0;
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      strongest = std::min(strongest,
                           ham.coupling(0, static_cast<Species>(a),
                                        static_cast<Species>(b)));
  EXPECT_DOUBLE_EQ(ham.coupling(0, 1, 2), strongest);
  // Symmetry.
  for (int s = 0; s < 2; ++s)
    for (int a = 0; a < 4; ++a)
      for (int b = 0; b < 4; ++b)
        EXPECT_DOUBLE_EQ(ham.coupling(s, static_cast<Species>(a),
                                      static_cast<Species>(b)),
                         ham.coupling(s, static_cast<Species>(b),
                                      static_cast<Species>(a)));
}

TEST(EpiHamiltonian, RandomEpiReproducible) {
  const auto a = random_epi(3, 2, 0.5, 99);
  const auto b = random_epi(3, 2, 0.5, 99);
  for (int s = 0; s < 2; ++s)
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        EXPECT_DOUBLE_EQ(a.coupling(s, static_cast<Species>(i),
                                    static_cast<Species>(j)),
                         b.coupling(s, static_cast<Species>(i),
                                    static_cast<Species>(j)));
}

// Parameterised sweep: bookkeeping invariants across lattice types and
// species counts.
struct Combo {
  LatticeType type;
  int n_species;
};

class EnergyBookkeeping : public ::testing::TestWithParam<Combo> {};

TEST_P(EnergyBookkeeping, IncrementalMatchesFullRecompute) {
  const auto [type, n_species] = GetParam();
  const auto lat = Lattice::create(type, 3, 3, 3, 2);
  const auto ham =
      random_epi(n_species, 2, 0.2,
                 static_cast<std::uint64_t>(n_species) * 31 + 7);
  Xoshiro256ss rng(static_cast<std::uint64_t>(n_species));
  auto cfg = random_configuration(lat, n_species, rng);
  double energy = ham.total_energy(cfg);
  for (int t = 0; t < 100; ++t) {
    const auto a = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    const auto b = static_cast<std::int32_t>(
        uniform_index(rng, static_cast<std::uint64_t>(lat.num_sites())));
    energy += ham.swap_delta(cfg, a, b);
    cfg.swap(a, b);
  }
  EXPECT_NEAR(energy, ham.total_energy(cfg), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnergyBookkeeping,
    ::testing::Values(Combo{LatticeType::kSimpleCubic, 2},
                      Combo{LatticeType::kSimpleCubic, 5},
                      Combo{LatticeType::kBCC, 2}, Combo{LatticeType::kBCC, 4},
                      Combo{LatticeType::kFCC, 3},
                      Combo{LatticeType::kFCC, 4}));

TEST(EpiHamiltonian, ParallelKahanMatchesSerialTightly) {
  // The parallel path keeps per-thread Kahan partials (not a plain
  // reduction(+)), so it tracks the serial Kahan sum to near machine
  // precision -- results must not depend on which side of the
  // total_energy size threshold a lattice lands.
  for (const int cells : {4, 8, 12}) {
    const auto lat = Lattice::create(LatticeType::kBCC, cells, cells, cells, 2);
    const auto ham = random_epi(4, 2, 0.3, 1234);
    Xoshiro256ss rng(static_cast<std::uint64_t>(cells) * 13);
    const auto cfg = random_configuration(lat, 4, rng);
    const double serial = ham.total_energy_serial(cfg);
    const double parallel = ham.total_energy_parallel(cfg);
    EXPECT_NEAR(parallel, serial, 1e-12 * std::max(1.0, std::abs(serial)))
        << "cells=" << cells;
  }
}

TEST(EpiHamiltonian, AssignDeltaMatchesRecomputeSparse) {
  // Few changed sites: the regime the sparse walk is built for.
  const auto lat = Lattice::create(LatticeType::kBCC, 3, 3, 3, 2);
  const auto ham = random_epi(4, 2, 0.2, 55);
  Xoshiro256ss rng(77);
  auto cfg = random_configuration(lat, 4, rng);
  const auto n = static_cast<std::size_t>(lat.num_sites());
  DeltaWorkspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    // Candidate = configuration with a handful of random swaps applied
    // (swaps keep the composition, like the VAE kernel's candidates).
    std::vector<Species> candidate(cfg.occupancy().begin(),
                                   cfg.occupancy().end());
    const int swaps = 1 + trial % 5;
    for (int sw = 0; sw < swaps; ++sw) {
      const auto a = static_cast<std::size_t>(uniform_index(rng, n));
      const auto b = static_cast<std::size_t>(uniform_index(rng, n));
      std::swap(candidate[a], candidate[b]);
    }
    std::size_t want_changed = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (candidate[i] != cfg.at(static_cast<std::int32_t>(i)))
        ++want_changed;

    const double before = ham.total_energy(cfg);
    const auto d = ham.assign_delta(cfg, candidate, ws);
    EXPECT_EQ(static_cast<std::size_t>(d.n_changed), want_changed);

    cfg.assign(candidate);
    const double after = ham.total_energy(cfg);
    ASSERT_NEAR(d.delta_energy, after - before,
                1e-9 * std::max(1.0, std::abs(after)));
  }
}

TEST(EpiHamiltonian, AssignDeltaExactWhenMostSitesChange) {
  // Dense-change candidates (independent random configurations): every
  // bond class -- changed-changed, changed-unchanged -- is exercised,
  // including periodic self-images on the small supercell.
  const auto lat = Lattice::create(LatticeType::kSimpleCubic, 2, 2, 2, 2);
  const auto ham = random_epi(3, 2, 0.4, 91);
  Xoshiro256ss rng(5);
  auto cfg = random_configuration(lat, 3, rng);
  DeltaWorkspace ws;
  for (int trial = 0; trial < 20; ++trial) {
    const auto other = random_configuration(lat, 3, rng);
    std::vector<Species> candidate(other.occupancy().begin(),
                                   other.occupancy().end());
    const double before = ham.total_energy(cfg);
    const auto d = ham.assign_delta(cfg, candidate, ws);
    cfg.assign(candidate);
    ASSERT_NEAR(d.delta_energy, ham.total_energy(cfg) - before,
                1e-9 * std::max(1.0, std::abs(before)));
  }
}

TEST(EpiHamiltonian, AssignDeltaIdenticalCandidateIsZero) {
  const auto lat = Lattice::create(LatticeType::kBCC, 2, 2, 2, 2);
  const auto ham = epi_nbmotaw();
  Xoshiro256ss rng(3);
  const auto cfg = random_configuration(lat, 4, rng);
  std::vector<Species> candidate(cfg.occupancy().begin(),
                                 cfg.occupancy().end());
  DeltaWorkspace ws;
  const auto d = ham.assign_delta(cfg, candidate, ws);
  EXPECT_EQ(d.n_changed, 0);
  EXPECT_EQ(d.delta_energy, 0.0);
}

}  // namespace
}  // namespace dt::lattice
