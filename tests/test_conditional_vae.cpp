// Conditional-VAE extension: condition vectors steer the decoder, the
// conditioned kernel remains an exactly-balanced MH proposal, and the
// framework pipeline works end to end with condition_on_energy.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "core/vae_proposal.hpp"
#include "mc/metropolis.hpp"
#include "nn/trainer.hpp"
#include "tensor/optimizer.hpp"
#include "validate/oracle.hpp"

namespace dt {
namespace {

nn::VaeOptions cvae_opts() {
  nn::VaeOptions o;
  o.n_sites = 16;
  o.n_species = 2;
  o.hidden = 24;
  o.latent = 4;
  o.condition_dim = 1;
  return o;
}

TEST(ConditionalVae, ParameterCountGrowsWithCondition) {
  auto uncond = cvae_opts();
  uncond.condition_dim = 0;
  nn::Vae a(uncond, 1);
  nn::Vae b(cvae_opts(), 1);
  // One extra input column in the encoder + one extra latent column in
  // the decoder: hidden extra weights each.
  EXPECT_EQ(b.parameter_count(), a.parameter_count() + 2 * 24);
}

TEST(ConditionalVae, DecodeRequiresCondition) {
  nn::Vae vae(cvae_opts(), 2);
  const std::vector<float> z = {0.1f, 0.2f, 0.3f, 0.4f};
  EXPECT_THROW((void)vae.decode_probs(z), Error);
  const float c = 0.5f;
  const auto probs = vae.decode_probs(z, std::span<const float>(&c, 1));
  EXPECT_EQ(probs.size(), 32u);
}

TEST(ConditionalVae, ConditionChangesDecoderOutput) {
  nn::Vae vae(cvae_opts(), 3);
  const std::vector<float> z = {0.5f, -0.5f, 1.0f, 0.0f};
  const float c0 = 0.0f, c1 = 1.0f;
  const auto p0 = vae.decode_probs(z, std::span<const float>(&c0, 1));
  const auto p1 = vae.decode_probs(z, std::span<const float>(&c1, 1));
  EXPECT_NE(p0, p1);
}

TEST(ConditionalVae, UnconditionalRejectsCondition) {
  auto opts = cvae_opts();
  opts.condition_dim = 0;
  nn::Vae vae(opts, 4);
  const std::vector<float> z = {0.1f, 0.2f, 0.3f, 0.4f};
  const float c = 0.5f;
  EXPECT_THROW((void)vae.decode_probs(z, std::span<const float>(&c, 1)),
               Error);
}

TEST(ConditionalVae, TrainingLearnsConditionDependence) {
  // Two "phases" keyed by the condition: c=0 -> all species 0 dominant,
  // c=1 -> all species 1 dominant. After training, decoding with c=0
  // must prefer species 0 and vice versa.
  nn::Vae vae(cvae_opts(), 5);
  nn::TrainOptions to;
  to.epochs = 60;
  to.batch_size = 8;
  to.learning_rate = 1e-2f;
  nn::Trainer trainer(vae, to);

  nn::ConfigDataset ds(16, 64, 1);
  Xoshiro256ss rng(6);
  for (int k = 0; k < 32; ++k) {
    const std::uint8_t species = k % 2;
    std::vector<std::uint8_t> occ(16, species);
    // A little noise so the dataset is not degenerate.
    occ[static_cast<std::size_t>(k) % 16] =
        static_cast<std::uint8_t>(1 - species);
    const float c = static_cast<float>(species);
    ds.add(occ, rng, std::span<const float>(&c, 1));
  }
  trainer.fit(ds);

  const std::vector<float> z(4, 0.0f);
  const float c0 = 0.0f, c1 = 1.0f;
  const auto p0 = vae.decode_probs(z, std::span<const float>(&c0, 1));
  const auto p1 = vae.decode_probs(z, std::span<const float>(&c1, 1));
  double mean0 = 0, mean1 = 0;
  for (int site = 0; site < 16; ++site) {
    mean0 += p0[static_cast<std::size_t>(2 * site)];      // P(species 0)
    mean1 += p1[static_cast<std::size_t>(2 * site)];
  }
  mean0 /= 16;
  mean1 /= 16;
  EXPECT_GT(mean0, 0.7);
  EXPECT_LT(mean1, 0.3);
}

TEST(ConditionalVae, SaveLoadRoundTrip) {
  nn::Vae a(cvae_opts(), 7);
  nn::Vae b(cvae_opts(), 999);
  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  const std::vector<float> z = {0.1f, 0.2f, 0.3f, 0.4f};
  const float c = 0.25f;
  EXPECT_EQ(a.decode_probs(z, std::span<const float>(&c, 1)),
            b.decode_probs(z, std::span<const float>(&c, 1)));
}

// Exactness with a condition: an (untrained) conditional kernel with a
// FIXED condition must still sample Boltzmann exactly.
TEST(ConditionalVaeProposal, DetailedBalanceWithFixedCondition) {
  const auto lat =
      lattice::Lattice::create(lattice::LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  const int n = lat.num_sites();
  const double temperature = 8.0;

  // Exact Boltzmann level marginals from the shared enumeration oracle.
  const auto oracle = validate::ExactOracle::get(
      ham, lat, validate::equiatomic_composition(n, 2));
  const auto probs = oracle->level_probabilities(units::Temperature(temperature));

  auto vae = std::make_shared<nn::Vae>(cvae_opts(), 11);
  core::VaeProposal prop(ham, vae);
  prop.set_condition({0.3f});

  mc::Rng rng(12, 0);
  auto cfg = lattice::random_configuration(lat, 2, rng);
  mc::MetropolisSampler sampler(ham, cfg, units::Temperature(temperature),
                                mc::Rng(12, 1));
  std::map<long long, double> counts;
  const int steps = 120000;
  for (int s = 0; s < 2000; ++s) sampler.step(prop);
  for (int s = 0; s < steps; ++s) {
    sampler.step(prop);
    counts[std::llround(4 * sampler.energy().value())] += 1.0;
  }
  const auto& levels = oracle->levels();
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const long long k = std::llround(4 * levels[i].energy);
    EXPECT_NEAR((counts.count(k) ? counts[k] : 0.0) / steps, probs[i],
                0.015)
        << "level " << levels[i].energy;
  }
}

TEST(ConditionalVaeProposal, RejectsWrongConditionSize) {
  const auto lat =
      lattice::Lattice::create(lattice::LatticeType::kBCC, 2, 2, 2, 1);
  const auto ham = lattice::epi_ising(1.0);
  auto vae = std::make_shared<nn::Vae>(cvae_opts(), 13);
  core::VaeProposal prop(ham, vae);
  EXPECT_THROW(prop.set_condition({0.1f, 0.2f}), Error);
}

TEST(ConditionalFramework, EndToEndPipelineRuns) {
  core::DeepThermoOptions opts;
  opts.lattice.nx = opts.lattice.ny = opts.lattice.nz = 2;
  opts.n_bins = 60;
  opts.condition_on_energy = true;
  opts.pretrain.n_temperatures = 3;
  opts.pretrain.samples_per_temperature = 16;
  opts.vae.hidden = 24;
  opts.vae.latent = 4;
  opts.vae.epochs = 5;
  opts.rewl.n_windows = 2;
  opts.rewl.wl.log_f_final = 1e-2;
  opts.rewl.max_sweeps = 100000;
  opts.seed = 33;

  auto fw = core::Framework::nbmotaw(opts);
  const auto result = fw.run();
  EXPECT_TRUE(result.rewl.converged);
  EXPECT_GT(result.vae_stats.proposed, 0u);
  EXPECT_EQ(fw.vae()->options().condition_dim, 1);
}

}  // namespace
}  // namespace dt
