#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dt {
namespace {

TEST(Serialize, PodRoundTrip) {
  std::stringstream ss;
  write_pod(ss, 42);
  write_pod(ss, 3.25);
  write_pod(ss, std::uint8_t{7});
  EXPECT_EQ(read_pod<int>(ss), 42);
  EXPECT_DOUBLE_EQ(read_pod<double>(ss), 3.25);
  EXPECT_EQ(read_pod<std::uint8_t>(ss), 7);
}

TEST(Serialize, StructRoundTrip) {
  struct Pod {
    int a;
    double b;
    bool operator==(const Pod&) const = default;
  };
  const Pod in{5, -1.5};
  std::stringstream ss;
  write_pod(ss, in);
  EXPECT_EQ(read_pod<Pod>(ss), in);
}

TEST(Serialize, VectorRoundTrip) {
  const std::vector<float> in = {1.5f, -2.0f, 0.0f};
  std::stringstream ss;
  write_vector(ss, in);
  EXPECT_EQ(read_vector<float>(ss), in);
}

TEST(Serialize, EmptyVector) {
  std::stringstream ss;
  write_vector(ss, std::vector<double>{});
  EXPECT_TRUE(read_vector<double>(ss).empty());
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  write_pod(ss, 1.0);
  (void)read_pod<double>(ss);
  EXPECT_THROW((void)read_pod<double>(ss), Error);

  std::stringstream ss2;
  write_pod<std::uint64_t>(ss2, 100);  // claims 100 elements, has none
  EXPECT_THROW((void)read_vector<int>(ss2), Error);
}

TEST(Serialize, SequentialMixedPayloads) {
  std::stringstream ss;
  write_pod(ss, 'x');
  write_vector(ss, std::vector<int>{1, 2, 3});
  write_pod(ss, 9.0f);
  EXPECT_EQ(read_pod<char>(ss), 'x');
  EXPECT_EQ(read_vector<int>(ss), (std::vector<int>{1, 2, 3}));
  EXPECT_FLOAT_EQ(read_pod<float>(ss), 9.0f);
}

}  // namespace
}  // namespace dt
