#!/usr/bin/env python3
"""Aggregate gcov line coverage and enforce per-directory floors.

Usage:
    scripts/coverage_report.py [build_dir]

Walks ``build_dir`` (default: build-cov/) for ``.gcda`` counter files
produced by a DT_ENABLE_COVERAGE build after a test run, shells out to
``gcov --json-format --stdout`` (no gcovr/lcov dependency), merges the
per-translation-unit counts, and prints a per-file table for the
project's own sources.

Exits non-zero if line coverage for the floored directories falls below
the thresholds — these are the subsystems whose correctness argument
rests on tests, so untested lines there are a red flag:

    src/mc/        >= DT_COV_FLOOR_MC       (default 85%)
    src/validate/  >= DT_COV_FLOOR_VALIDATE (default 85%)
"""

import json
import os
import subprocess
import sys
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FLOORS = {
    "src/mc/": float(os.environ.get("DT_COV_FLOOR_MC", "85")),
    "src/validate/": float(os.environ.get("DT_COV_FLOOR_VALIDATE", "85")),
}


def find_gcda(build_dir):
    for root, _dirs, names in os.walk(build_dir):
        for name in names:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda):
    """One merged-JSON document per .gcda, parsed; None on gcov failure."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        cwd=os.path.dirname(gcda),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return None
    # --stdout emits one JSON document per line (one per .gcda given).
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line:
            docs.append(json.loads(line))
    return docs


def merge_counts(build_dir):
    """source path -> {line -> hit count (max across TUs)}."""
    counts = defaultdict(lambda: defaultdict(int))
    n_gcda = 0
    for gcda in find_gcda(build_dir):
        docs = gcov_json(gcda)
        if not docs:
            continue
        n_gcda += 1
        for doc in docs:
            for f in doc.get("files", []):
                path = os.path.normpath(
                    os.path.join(os.path.dirname(gcda), f["file"]))
                if not path.startswith(REPO_ROOT + os.sep):
                    continue
                rel = os.path.relpath(path, REPO_ROOT)
                if not rel.startswith("src" + os.sep):
                    continue  # tests/bench/examples don't gate coverage
                lines = counts[rel]
                for ln in f.get("lines", []):
                    no = ln["line_number"]
                    # A line is covered if ANY TU executed it (headers
                    # compile into many TUs; inline code counts once).
                    lines[no] = max(lines[no], ln["count"])
    if n_gcda == 0:
        sys.exit(f"coverage_report.py: no usable .gcda under {build_dir}; "
                 "configure with -DDT_ENABLE_COVERAGE=ON and run the tests")
    return counts


def main():
    # Absolute: gcov runs with cwd set to each counter's directory, so a
    # relative build_dir would stop resolving there.
    build_dir = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1 else
        os.path.join(REPO_ROOT, "build-cov"))
    if not os.path.isdir(build_dir):
        sys.exit(f"coverage_report.py: no build tree at {build_dir}")

    counts = merge_counts(build_dir)

    per_dir = defaultdict(lambda: [0, 0])  # dir -> [covered, total]
    print(f"{'file':<44} {'lines':>7} {'hit':>7} {'cov%':>7}")
    for rel in sorted(counts):
        lines = counts[rel]
        total = len(lines)
        covered = sum(1 for c in lines.values() if c > 0)
        pct = 100.0 * covered / total if total else 100.0
        print(f"{rel:<44} {total:>7} {covered:>7} {pct:>6.1f}%")
        for prefix in FLOORS:
            if rel.startswith(prefix):
                per_dir[prefix][0] += covered
                per_dir[prefix][1] += total

    print()
    failed = False
    for prefix, floor in sorted(FLOORS.items()):
        covered, total = per_dir[prefix]
        pct = 100.0 * covered / total if total else 0.0
        verdict = "ok" if pct >= floor else "BELOW FLOOR"
        if pct < floor:
            failed = True
        print(f"{prefix:<16} {pct:6.1f}%  (floor {floor:.0f}%)  {verdict}")

    if failed:
        sys.exit("coverage_report.py: line-coverage floor violated")
    print("coverage_report.py: all floors met")


if __name__ == "__main__":
    main()
