#!/usr/bin/env bash
# Seed sweep for the oracle test tier: run every `-L oracle` test under
# N different DT_TEST_SEED values to flush out statistical-threshold
# flakiness before it lands in CI (see README "Test tiers").
#
#   scripts/oracle_sweep.sh [n_seeds] [extra ctest args...]
#
# Defaults to 10 seeds drawn deterministically from a fixed base, so two
# sweeps of the same tree exercise the same seeds. Requires a configured
# build/ tree (cmake -B build && cmake --build build).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

n_seeds="${1:-10}"
shift || true

if [[ ! -d "${build_dir}" ]]; then
  echo "oracle_sweep.sh: no build tree at ${build_dir}; run cmake first" >&2
  exit 1
fi
cmake --build "${build_dir}" -j "${jobs}"

# Deterministic seed list: golden-ratio stride from a fixed base keeps
# the seeds well spread without depending on $RANDOM.
base=20260808
failures=0
for ((i = 0; i < n_seeds; ++i)); do
  seed=$((base + i * 2654435761))
  echo "==== oracle sweep ${i}/${n_seeds}: DT_TEST_SEED=${seed} ===="
  if ! DT_TEST_SEED="${seed}" \
      ctest --test-dir "${build_dir}" --output-on-failure \
            -j "${jobs}" -L oracle "$@"; then
    echo "oracle_sweep.sh: FAILED at DT_TEST_SEED=${seed}" >&2
    failures=$((failures + 1))
  fi
done

if ((failures > 0)); then
  echo "oracle_sweep.sh: ${failures}/${n_seeds} seeds failed" >&2
  exit 1
fi
echo "oracle_sweep.sh: oracle tier green across ${n_seeds} seeds"
