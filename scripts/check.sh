#!/usr/bin/env bash
# Pre-merge gate. Stages, in order (see README "check.sh pipeline"):
#
#   static      dt_lint domain invariants (+ standalone-header compile),
#               gcc -fanalyzer gate over curated TUs, clang-format diff
#               gate, clang-tidy profile
#   asan        ASan/UBSan build, tier-1 suite under both
#   tsan        ThreadSanitizer pass over the concurrency-heavy tests
#   coverage    line-coverage floors for src/mc/ and src/validate/
#   perf        Release perf smoke vs BENCH_baseline.json
#
#   scripts/check.sh [extra ctest args...]     (args go to the asan stage)
#
# Escape hatches (set to 1): DT_SKIP_LINT, DT_SKIP_ANALYZER,
# DT_SKIP_CLANG_TIDY, DT_SKIP_TSAN, DT_SKIP_COVERAGE,
# DT_SKIP_PERF_SMOKE. Stages that need a missing optional tool
# (clang-format, clang-tidy) self-skip.
#
# Each stage emits one machine-readable summary line:
#   check.sh[stage] name=<stage> status=<ok|fail|skip> duration_s=<secs>
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
ctest_args=("$@")

# abort_on_error makes ASan failures fail the ctest run instead of just
# printing; detect_leaks stays on (default) to catch checkpoint I/O leaks.
export ASAN_OPTIONS="abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"

# ---- stage harness ------------------------------------------------------
# run_stage <name> <fn> runs <fn> in a subshell, times it, and prints the
# summary line. A failing stage prints status=fail and stops the gate.
# A stage may skip itself by returning 99.
declare -a stage_lines=()

summarize() {
  printf '%s\n' "" "check.sh summary:"
  printf '  %s\n' "${stage_lines[@]}"
}

run_stage() {
  local name="$1" fn="$2" status rc t0 t1
  t0=$(date +%s)
  rc=0
  ( "${fn}" ) || rc=$?
  t1=$(date +%s)
  case "${rc}" in
    0) status=ok ;;
    99) status=skip ;;
    *) status=fail ;;
  esac
  local line="check.sh[stage] name=${name} status=${status} duration_s=$((t1 - t0))"
  echo "${line}"
  stage_lines+=("${line}")
  if [[ "${status}" == fail ]]; then
    summarize
    echo "check.sh: stage '${name}' FAILED" >&2
    exit 1
  fi
}

# ---- static pass --------------------------------------------------------
# Cheapest and most deterministic checks run first so discipline
# violations fail in seconds, before any compiler warms up.

stage_lint() {
  if [[ "${DT_SKIP_LINT:-0}" == "1" ]]; then
    echo "check.sh: dt_lint skipped (DT_SKIP_LINT=1)"
    return 99
  fi
  python3 "${repo_root}/scripts/lint/dt_lint.py" --repo "${repo_root}" \
    --self-test tests/lint
  python3 "${repo_root}/scripts/lint/dt_lint.py" --repo "${repo_root}" \
    --compile-headers
  echo "check.sh: dt_lint invariants hold (src/ + standalone headers)"
}

stage_analyzer() {
  if [[ "${DT_SKIP_ANALYZER:-0}" == "1" ]]; then
    echo "check.sh: gcc -fanalyzer gate skipped (DT_SKIP_ANALYZER=1)"
    return 99
  fi
  if ! command -v g++ >/dev/null 2>&1; then
    echo "check.sh: gcc -fanalyzer gate skipped (no g++ on PATH)"
    return 99
  fi
  python3 "${repo_root}/scripts/lint/dt_analyze.py" --repo "${repo_root}" \
    --jobs "${jobs}"
  echo "check.sh: gcc -fanalyzer gate clean (curated targets)"
}

stage_format() {
  if [[ "${DT_SKIP_LINT:-0}" == "1" ]]; then
    echo "check.sh: format gate skipped (DT_SKIP_LINT=1)"
    return 99
  fi
  # check_format.sh self-skips (exit 2) when clang-format is absent.
  local rc=0
  "${repo_root}/scripts/check_format.sh" || rc=$?
  if [[ "${rc}" == "2" ]]; then
    return 99
  fi
  return "${rc}"
}

stage_clang_tidy() {
  if [[ "${DT_SKIP_CLANG_TIDY:-0}" == "1" ]]; then
    echo "check.sh: clang-tidy skipped (DT_SKIP_CLANG_TIDY=1)"
    return 99
  fi
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "check.sh: clang-tidy skipped (no clang-tidy on PATH)"
    return 99
  fi
  local tidy_dir="${repo_root}/build-tidy"
  cmake -B "${tidy_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDT_ENABLE_CLANG_TIDY=ON \
    -DDT_BUILD_BENCH=OFF -DDT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${tidy_dir}" -j "${jobs}"
  echo "check.sh: clang-tidy profile clean"
}

run_stage static_lint stage_lint
run_stage static_analyzer stage_analyzer
run_stage static_format stage_format
run_stage static_clang_tidy stage_clang_tidy

# ---- ASan/UBSan tier-1 --------------------------------------------------
# Dedicated build tree (build-asan/) so the regular build/ stays
# untouched. Pass e.g. -R Determinism to narrow the run.

stage_asan() {
  local build_dir="${repo_root}/build-asan"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDT_ENABLE_SANITIZERS=ON
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
    -L tier1 "${ctest_args[@]}"
  echo "check.sh: tier-1 suite clean under ASan/UBSan"
}

run_stage asan_tier1 stage_asan

# ---- ThreadSanitizer pass -----------------------------------------------
# Races in the lock-free observability plane (metrics registry, trace
# ring, health cells scraped over HTTP mid-run) and in the REWL/minicomm
# thread fabric slip past ASan; rebuild the concerned test binaries
# under TSan and run them directly. Skip with DT_SKIP_TSAN=1 (e.g. when
# the toolchain lacks libtsan).

stage_tsan() {
  if [[ "${DT_SKIP_TSAN:-0}" == "1" ]]; then
    echo "check.sh: TSan pass skipped (DT_SKIP_TSAN=1)"
    return 99
  fi
  local tsan_dir="${repo_root}/build-tsan"
  local targets=(test_metrics test_trace test_http_obs
                 test_minicomm test_rewl test_ddp test_decode_plane)
  cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDT_ENABLE_TSAN=ON >/dev/null
  cmake --build "${tsan_dir}" -j "${jobs}" --target "${targets[@]}"
  # OMP_NUM_THREADS=1: libgomp is not TSan-instrumented and would emit
  # false positives from its own synchronisation.
  local t
  for t in "${targets[@]}"; do
    TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}" OMP_NUM_THREADS=1 \
      "${tsan_dir}/tests/${t}"
  done
  echo "check.sh: concurrency tests clean under TSan"
}

run_stage tsan stage_tsan

# ---- Coverage gate ------------------------------------------------------
# Line-coverage floors for the subsystems whose correctness argument
# rests on tests (src/mc/, src/validate/ -- see DESIGN "Validation
# harness"). Instrumented build tree (build-cov/), tier-1 + oracle test
# run, then scripts/coverage_report.py aggregates the gcov counters and
# enforces the floors. Skip with DT_SKIP_COVERAGE=1 (slow: -O0 build).

stage_coverage() {
  if [[ "${DT_SKIP_COVERAGE:-0}" == "1" ]]; then
    echo "check.sh: coverage gate skipped (DT_SKIP_COVERAGE=1)"
    return 99
  fi
  local cov_dir="${repo_root}/build-cov"
  cmake -B "${cov_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DDT_ENABLE_COVERAGE=ON \
    -DDT_BUILD_BENCH=OFF -DDT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${cov_dir}" -j "${jobs}"
  # Fresh counters: stale .gcda from a previous tree layout would skew
  # the merge.
  find "${cov_dir}" -name '*.gcda' -delete
  # The 63M-state multinomial enumeration takes ~20 min at -O0 under
  # instrumentation (19 s optimised); its code paths are covered by the
  # other ExactOracle tests, so it sits out the coverage run.
  ctest --test-dir "${cov_dir}" -j "${jobs}" -L 'tier1|oracle' \
    -E 'MultiSpeciesStateCountIsMultinomial' --output-on-failure
  python3 "${repo_root}/scripts/coverage_report.py" "${cov_dir}"
  echo "check.sh: coverage floors met"
}

run_stage coverage stage_coverage

# ---- Release perf smoke -------------------------------------------------
# Guards the proposal fast path (ISSUE 4): re-times the headline micro
# benchmarks in the Release tree and fails on a >20% CPU-time regression
# against BENCH_baseline.json. Re-record the baseline on an intentional
# perf change with scripts/bench_baseline.sh. Skip with
# DT_SKIP_PERF_SMOKE=1 (e.g. on loaded CI machines).

stage_perf() {
  if [[ "${DT_SKIP_PERF_SMOKE:-0}" == "1" ]]; then
    echo "check.sh: perf smoke skipped (DT_SKIP_PERF_SMOKE=1)"
    return 99
  fi
  local baseline="${repo_root}/BENCH_baseline.json"
  if [[ ! -f "${baseline}" ]]; then
    echo "check.sh: WARNING perf smoke skipped -- ${baseline} missing" \
         "(record it with scripts/bench_baseline.sh)"
    return 99
  fi

  local release_dir="${repo_root}/build"
  cmake -B "${release_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
    >/dev/null
  cmake --build "${release_dir}" -j "${jobs}" --target bench_micro
  local smoke_json="${release_dir}/bench_micro_smoke.json"
  "${release_dir}/bench/bench_micro" \
    --benchmark_filter='BM_(GemmNN/256|VaeGlobalProposal/10/16|TotalEnergy/8)' \
    --benchmark_min_time=0.5 --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="${smoke_json}" --benchmark_out_format=json >/dev/null

  python3 - "${baseline}" "${smoke_json}" <<'PY'
import json
import sys

baseline_path, smoke_path = sys.argv[1:3]
with open(baseline_path) as f:
    base = json.load(f).get("micro", {})
with open(smoke_path) as f:
    smoke = json.load(f)

# Median of 3 repetitions vs the recorded single-run baseline.
fresh = {}
for b in smoke.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        fresh[b["run_name"]] = b["cpu_time"]

tol = 1.20
failures = []
for name, cpu_ns in sorted(fresh.items()):
    ref = base.get(name, {}).get("cpu_time_ns")
    if ref is None:
        print(f"perf smoke: {name}: no baseline entry, skipping")
        continue
    ratio = cpu_ns / ref
    status = "OK" if ratio <= tol else "REGRESSED"
    print(f"perf smoke: {name}: {cpu_ns:.0f} ns vs baseline "
          f"{ref:.0f} ns ({ratio:.2f}x) {status}")
    if ratio > tol:
        failures.append(name)
if failures:
    sys.exit("check.sh: perf smoke FAILED (>20% regression): "
             + ", ".join(failures))
print("check.sh: perf smoke clean")
PY
}

run_stage perf_smoke stage_perf

summarize
echo "check.sh: all stages passed (or explicitly skipped)"
