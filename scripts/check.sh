#!/usr/bin/env bash
# Pre-merge gate: build with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the tier-1 test suite under them (see README "Test tiers").
#
#   scripts/check.sh [extra ctest args...]
#
# Uses a dedicated build tree (build-asan/) so the regular build/ stays
# untouched. Pass e.g. -R Determinism to narrow the run.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-asan"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDT_ENABLE_SANITIZERS=ON
cmake --build "${build_dir}" -j "${jobs}"

# abort_on_error makes ASan failures fail the ctest run instead of just
# printing; detect_leaks stays on (default) to catch checkpoint I/O leaks.
export ASAN_OPTIONS="abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"

cd "${build_dir}"
ctest --output-on-failure -j "${jobs}" -L tier1 "$@"
echo "check.sh: tier-1 suite clean under ASan/UBSan"
