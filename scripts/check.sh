#!/usr/bin/env bash
# Pre-merge gate: build with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the tier-1 test suite under them (see README "Test tiers").
#
#   scripts/check.sh [extra ctest args...]
#
# Uses a dedicated build tree (build-asan/) so the regular build/ stays
# untouched. Pass e.g. -R Determinism to narrow the run.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-asan"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDT_ENABLE_SANITIZERS=ON
cmake --build "${build_dir}" -j "${jobs}"

# abort_on_error makes ASan failures fail the ctest run instead of just
# printing; detect_leaks stays on (default) to catch checkpoint I/O leaks.
export ASAN_OPTIONS="abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"

cd "${build_dir}"
ctest --output-on-failure -j "${jobs}" -L tier1 "$@"
echo "check.sh: tier-1 suite clean under ASan/UBSan"

# ---- ThreadSanitizer pass ----------------------------------------------
# Races in the lock-free observability plane (metrics registry, trace
# ring, health cells scraped over HTTP mid-run) slip past ASan; rebuild
# the three concerned test binaries under TSan and run them directly.
# Skip with DT_SKIP_TSAN=1 (e.g. when the toolchain lacks libtsan).
if [[ "${DT_SKIP_TSAN:-0}" == "1" ]]; then
  echo "check.sh: TSan pass skipped (DT_SKIP_TSAN=1)"
else
  tsan_dir="${repo_root}/build-tsan"
  cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDT_ENABLE_TSAN=ON >/dev/null
  cmake --build "${tsan_dir}" -j "${jobs}" \
    --target test_metrics test_trace test_http_obs
  # OMP_NUM_THREADS=1: libgomp is not TSan-instrumented and would emit
  # false positives from its own synchronisation.
  for t in test_metrics test_trace test_http_obs; do
    TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}" OMP_NUM_THREADS=1 \
      "${tsan_dir}/tests/${t}"
  done
  echo "check.sh: observability tests clean under TSan"
fi

# ---- Coverage gate ------------------------------------------------------
# Line-coverage floors for the subsystems whose correctness argument
# rests on tests (src/mc/, src/validate/ -- see DESIGN "Validation
# harness"). Instrumented build tree (build-cov/), tier-1 + oracle test
# run, then scripts/coverage_report.py aggregates the gcov counters and
# enforces the floors. Skip with DT_SKIP_COVERAGE=1 (slow: -O0 build).
if [[ "${DT_SKIP_COVERAGE:-0}" == "1" ]]; then
  echo "check.sh: coverage gate skipped (DT_SKIP_COVERAGE=1)"
else
  cov_dir="${repo_root}/build-cov"
  cmake -B "${cov_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DDT_ENABLE_COVERAGE=ON \
    -DDT_BUILD_BENCH=OFF -DDT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${cov_dir}" -j "${jobs}"
  # Fresh counters: stale .gcda from a previous tree layout would skew
  # the merge.
  find "${cov_dir}" -name '*.gcda' -delete
  # The 63M-state multinomial enumeration takes ~20 min at -O0 under
  # instrumentation (19 s optimised); its code paths are covered by the
  # other ExactOracle tests, so it sits out the coverage run.
  ctest --test-dir "${cov_dir}" -j "${jobs}" -L 'tier1|oracle' \
    -E 'MultiSpeciesStateCountIsMultinomial' --output-on-failure
  python3 "${repo_root}/scripts/coverage_report.py" "${cov_dir}"
  echo "check.sh: coverage floors met"
fi

# ---- Release perf smoke -------------------------------------------------
# Guards the proposal fast path (ISSUE 4): re-times the headline micro
# benchmarks in the Release tree and fails on a >20% CPU-time regression
# against BENCH_baseline.json. Re-record the baseline on an intentional
# perf change with scripts/bench_baseline.sh. Skip with
# DT_SKIP_PERF_SMOKE=1 (e.g. on loaded CI machines).
if [[ "${DT_SKIP_PERF_SMOKE:-0}" == "1" ]]; then
  echo "check.sh: perf smoke skipped (DT_SKIP_PERF_SMOKE=1)"
  exit 0
fi
baseline="${repo_root}/BENCH_baseline.json"
if [[ ! -f "${baseline}" ]]; then
  echo "check.sh: WARNING perf smoke skipped -- ${baseline} missing" \
       "(record it with scripts/bench_baseline.sh)"
  exit 0
fi

release_dir="${repo_root}/build"
cmake -B "${release_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  >/dev/null
cmake --build "${release_dir}" -j "${jobs}" --target bench_micro
smoke_json="${release_dir}/bench_micro_smoke.json"
"${release_dir}/bench/bench_micro" \
  --benchmark_filter='BM_(GemmNN/256|VaeGlobalProposal/10/16|TotalEnergy/8)' \
  --benchmark_min_time=0.5 --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${smoke_json}" --benchmark_out_format=json >/dev/null

python3 - "${baseline}" "${smoke_json}" <<'PY'
import json
import sys

baseline_path, smoke_path = sys.argv[1:3]
with open(baseline_path) as f:
    base = json.load(f).get("micro", {})
with open(smoke_path) as f:
    smoke = json.load(f)

# Median of 3 repetitions vs the recorded single-run baseline.
fresh = {}
for b in smoke.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        fresh[b["run_name"]] = b["cpu_time"]

tol = 1.20
failures = []
for name, cpu_ns in sorted(fresh.items()):
    ref = base.get(name, {}).get("cpu_time_ns")
    if ref is None:
        print(f"perf smoke: {name}: no baseline entry, skipping")
        continue
    ratio = cpu_ns / ref
    status = "OK" if ratio <= tol else "REGRESSED"
    print(f"perf smoke: {name}: {cpu_ns:.0f} ns vs baseline "
          f"{ref:.0f} ns ({ratio:.2f}x) {status}")
    if ratio > tol:
        failures.append(name)
if failures:
    sys.exit("check.sh: perf smoke FAILED (>20% regression): "
             + ", ".join(failures))
print("check.sh: perf smoke clean")
PY
