#!/usr/bin/env python3
"""dt_lint: domain-invariant linter for the deepthermo tree.

Enforces project invariants that generic tooling cannot express:

  rng-discipline        All randomness flows through src/common/rng
                        (Philox / xoshiro with explicit streams, so runs
                        are bit-exact reproducible and resumable). Bans
                        rand()/srand(), std::random_device and ad-hoc
                        std::mt19937 engines everywhere else.
  wallclock-discipline  Wall-clock time (std::chrono::system_clock,
                        std::time, gettimeofday) is banned outside the
                        timestamping layer; measurement code must use
                        the steady clock via common/stopwatch.
  hot-path-purity       Functions named in the hotlist (inner sampling /
                        GEMM kernels) may not allocate, construct owning
                        containers, or take locks.
  io-discipline         Library code writes through the logger; the
                        printf family and std::cout/cerr/clog are banned
                        (dt::strformat is the sanctioned wrapper).
  header-hygiene        Every header carries #pragma once; with
                        --compile-headers each header must also compile
                        standalone (self-sufficient includes).
  unit-discipline       Physics-domain quantities cross signatures as
                        the strong types of common/units.hpp (Energy,
                        Beta, LogWeight, ...), never as bare `double
                        temperature` / `double energy` parameters. Raw
                        doubles stay legal at the serialisation /
                        config / telemetry boundary (struct members and
                        locals are not parameters and do not match).
  module-layering       The src/ module DAG declared in
                        scripts/lint/layers.txt is authoritative:
                        #include edges must stay inside each module's
                        declared transitive closure, and the CMake
                        target_link_libraries graph must match the
                        declaration exactly (checked when the module
                        has a CMakeLists.txt).

Violations are suppressed case-by-case through an allowlist file
(default scripts/lint/dt_lint_allow.txt) whose entries carry a required
justification; entries that no longer match anything are an error, so
the allowlist cannot rot.

Exit codes: 0 clean, 1 violations (or self-test failure), 2 bad
invocation / config (unparseable allowlist, stale entries, ...).

Usage:
  dt_lint.py [--root DIR] [--allowlist FILE] [--hotlist FILE]
             [--compile-headers] [--quiet]
  dt_lint.py --self-test tests/lint
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import subprocess
import sys

RULES = (
    "rng-discipline",
    "wallclock-discipline",
    "hot-path-purity",
    "io-discipline",
    "header-hygiene",
    "unit-discipline",
    "module-layering",
)

# Paths (relative, '/'-separated) exempt from rng-discipline: the RNG
# layer itself is where the engines live.
RNG_HOME = ("src/common/rng",)

# Paths exempt from unit-discipline: the strong types themselves.
UNITS_HOME = ("src/common/units",)

SOURCE_SUFFIXES = (".hpp", ".cpp")


class LintError(Exception):
    """Configuration problem (bad allowlist, bad hotlist, ...)."""


@dataclasses.dataclass(frozen=True)
class Violation:
    rule: str
    path: str  # relative, '/'-separated
    line: int  # 1-based
    message: str
    symbol: str | None = None  # function name for hot-path-purity


# --------------------------------------------------------------------------
# Source preprocessing: blank out comments and string/char literals while
# preserving line structure, so rule regexes never match inside either.
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == "R" and text[i : i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            end = n if end < 0 else end + len(m.group(1)) + 2
            out.extend(ch if ch == "\n" else "" for ch in text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Line-pattern rules
# --------------------------------------------------------------------------

RNG_PATTERNS = (
    (re.compile(r"(\bstd::|(?<![\w:.>]))s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "ad-hoc std::mt19937 engine"),
)

WALLCLOCK_PATTERNS = (
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bstd::time\s*\("), "std::time()"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(nullptr|NULL|0|&)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
)

IO_PATTERNS = (
    (
        re.compile(
            r"\b(v?f?printf|v?s(n)?printf|puts|fputs|putchar|fputc)\s*\("
        ),
        "printf-family call",
    ),
    (re.compile(r"\bstd::(cout|cerr|clog)\b"), "console iostream"),
)


# unit-discipline: a bare-double *parameter* whose name is a physics
# domain word must be one of the common/units.hpp strong types. Only
# parameters match (name directly followed by ',' or ')'): struct
# members end in ';' or '= default', locals in '=', so the
# serialisation / config / telemetry boundary stays raw double without
# special cases.
UNIT_PARAM_RE = re.compile(
    r"\bdouble\s+(\w*(?:temperature|beta|energy|log_g|log_weight"
    r"|log_q|log_prob|log_dos)\w*)\s*[,)]")


def scan_line_rules(path: str, stripped: str) -> list[Violation]:
    out: list[Violation] = []
    rng_exempt = any(path.startswith(home) for home in RNG_HOME)
    units_exempt = any(path.startswith(home) for home in UNITS_HOME)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if not rng_exempt:
            for pat, what in RNG_PATTERNS:
                if pat.search(line):
                    out.append(Violation(
                        "rng-discipline", path, lineno,
                        f"{what}: use the engines in src/common/rng "
                        "(deterministic, stream-splittable, resumable)"))
        for pat, what in WALLCLOCK_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    "wallclock-discipline", path, lineno,
                    f"{what}: wall-clock reads belong to the logger's "
                    "timestamp path; measure with common/stopwatch "
                    "(steady clock)"))
        for pat, what in IO_PATTERNS:
            if pat.search(line):
                out.append(Violation(
                    "io-discipline", path, lineno,
                    f"{what}: library code reports through DT_LOG_* and "
                    "formats with dt::strformat"))
        if not units_exempt:
            for m in UNIT_PARAM_RE.finditer(line):
                out.append(Violation(
                    "unit-discipline", path, lineno,
                    f"bare 'double {m.group(1)}' parameter: physics "
                    "domains cross signatures as the strong types of "
                    "common/units.hpp (Energy, Beta, LogWeight, ...); "
                    "raw doubles belong to the serialisation/config "
                    "boundary only", symbol=m.group(1)))
    return out


# --------------------------------------------------------------------------
# hot-path-purity: locate hotlisted function bodies by brace matching.
# --------------------------------------------------------------------------

ALLOC_PATTERNS = (
    (re.compile(r"(?<![\w:.])new\b(?!\s*\()"), "operator new"),
    (re.compile(r"(?<![\w:.])new\s*\("), "operator new"),
    (re.compile(r"\b(malloc|calloc|realloc)\s*\("), "malloc-family call"),
    (re.compile(r"\bmake_(unique|shared)\b"), "make_unique/make_shared"),
    (
        re.compile(
            r"\bstd::(vector|string|deque|list|map|unordered_map|set"
            r"|unordered_set)\b\s*(<[^;{}]*>)?\s+[A-Za-z_]\w*\s*[({=;]"
        ),
        "local owning-container construction",
    ),
)

LOCK_PATTERNS = (
    (
        re.compile(
            r"\b(lock_guard|unique_lock|scoped_lock|shared_lock|MutexLock)\b"
        ),
        "lock acquisition",
    ),
    (re.compile(r"(->|\.)\s*lock\s*\("), "explicit lock() call"),
)


def find_function_body(stripped: str, name: str) -> tuple[int, str] | None:
    """(1-based line of the opening brace, body text) for `name`'s
    definition, or None. Definitions only: a ';' before '{' is a
    declaration and is skipped."""
    for m in re.finditer(r"\b%s\s*\(" % re.escape(name), stripped):
        i = m.end() - 1  # at '('
        depth = 0
        n = len(stripped)
        while i < n:  # skip the parameter list
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        i += 1
        # Trailing qualifiers (const, noexcept, -> T, attributes) may
        # precede the body; a ';' first means no body here.
        while i < n and stripped[i] not in "{;":
            i += 1
        if i >= n or stripped[i] == ";":
            continue
        start = i
        depth = 0
        while i < n:
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        line = stripped.count("\n", 0, start) + 1
        return line, stripped[start : i + 1]
    return None


def scan_hot_path(path: str, stripped: str,
                  functions: list[str]) -> list[Violation]:
    out: list[Violation] = []
    for fn in functions:
        located = find_function_body(stripped, fn)
        if located is None:
            raise LintError(
                f"hotlist names {path}:{fn} but no definition of "
                f"'{fn}' was found there (stale hotlist entry?)")
        body_line, body = located
        for offset, line in enumerate(body.splitlines()):
            for pat, what in ALLOC_PATTERNS + LOCK_PATTERNS:
                if pat.search(line):
                    out.append(Violation(
                        "hot-path-purity", path, body_line + offset,
                        f"{what} inside hotlisted function '{fn}': hot "
                        "kernels must use caller-provided workspace and "
                        "stay lock-free", symbol=fn))
    return out


# --------------------------------------------------------------------------
# module-layering: the module DAG in scripts/lint/layers.txt is the
# single declaration of who may depend on whom. Include edges must stay
# inside each module's transitive closure; where a module has a
# src/<mod>/CMakeLists.txt, its target_link_libraries(dt_<mod> ...)
# edges must equal the declaration (so the build graph cannot drift
# from the declared one).
# --------------------------------------------------------------------------

MODULE_RE = re.compile(r"(?:^|/)src/([^/]+)/")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"/]+)/')
CMAKE_LINK_RE = re.compile(
    r"target_link_libraries\s*\(\s*dt_(\w+)([^)]*)\)", re.DOTALL)


def parse_layers(path: pathlib.Path) -> dict[str, list[str]]:
    """'<module>: <dep> <dep> ...' per line; deps must be declared
    modules; the graph must be acyclic."""
    layers: dict[str, list[str]] = {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        mod, sep, deps = line.partition(":")
        mod = mod.strip()
        if not sep or not mod or " " in mod:
            raise LintError(
                f"{path}:{lineno}: layer entries are "
                f"'<module>: <dep> <dep> ...': {raw!r}")
        if mod in layers:
            raise LintError(f"{path}:{lineno}: duplicate module '{mod}'")
        layers[mod] = deps.split()
    for mod, deps in layers.items():
        for d in deps:
            if d not in layers:
                raise LintError(
                    f"{path}: module '{mod}' depends on undeclared "
                    f"module '{d}'")
    # Cycle check + transitive closure by DFS.
    state: dict[str, int] = {}  # 1 = visiting, 2 = done

    def visit(mod: str, trail: list[str]) -> None:
        if state.get(mod) == 2:
            return
        if state.get(mod) == 1:
            cycle = " -> ".join(trail[trail.index(mod):] + [mod])
            raise LintError(f"{path}: dependency cycle: {cycle}")
        state[mod] = 1
        for d in layers[mod]:
            visit(d, trail + [mod])
        state[mod] = 2

    for mod in layers:
        visit(mod, [])
    return layers


def layer_closure(layers: dict[str, list[str]]) -> dict[str, set[str]]:
    closure: dict[str, set[str]] = {}

    def walk(mod: str) -> set[str]:
        if mod not in closure:
            acc: set[str] = set()
            for d in layers[mod]:
                acc.add(d)
                acc |= walk(d)
            closure[mod] = acc
        return closure[mod]

    for mod in layers:
        walk(mod)
    return closure


def check_layers_against_cmake(repo: pathlib.Path, layers_path: str,
                               layers: dict[str, list[str]]) -> None:
    """Where src/<mod>/CMakeLists.txt exists, its dt_* link edges must
    equal the layers.txt declaration (dt_warnings, the flags-only
    INTERFACE target, is infrastructure and exempt)."""
    for mod, deps in layers.items():
        cmake = repo / "src" / mod / "CMakeLists.txt"
        if not cmake.is_file():
            continue
        linked: set[str] = set()
        for m in CMAKE_LINK_RE.finditer(cmake.read_text()):
            if m.group(1) != mod:
                continue
            for lib in re.findall(r"\bdt_(\w+)\b", m.group(2)):
                if lib != "warnings":
                    linked.add(lib)
        declared = set(deps)
        if linked != declared:
            extra = sorted(linked - declared)
            missing = sorted(declared - linked)
            detail = []
            if extra:
                detail.append(f"CMake links undeclared: {', '.join(extra)}")
            if missing:
                detail.append(
                    f"declared but not linked: {', '.join(missing)}")
            raise LintError(
                f"{layers_path}: module '{mod}' disagrees with "
                f"{cmake.relative_to(repo).as_posix()} "
                f"({'; '.join(detail)})")


def scan_layering(path: str, text: str, layers: dict[str, list[str]],
                  closure: dict[str, set[str]]) -> list[Violation]:
    m = MODULE_RE.search(path)
    if m is None:
        return []  # not module code (tests, benches, scripts)
    mod = m.group(1)
    if mod not in layers:
        raise LintError(
            f"src module '{mod}' ({path}) is not declared in layers.txt; "
            "add it with its dependency list")
    allowed = closure[mod] | {mod}
    out: list[Violation] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        inc = INCLUDE_RE.match(line)
        if inc is None:
            continue
        target = inc.group(1)
        if target in layers and target not in allowed:
            out.append(Violation(
                "module-layering", path, lineno,
                f"module '{mod}' includes '{target}/...' but layers.txt "
                f"declares no path {mod} -> {target}; either the include "
                "is a layering leak or the dependency belongs in "
                "layers.txt + CMake", symbol=target))
    return out


# --------------------------------------------------------------------------
# header-hygiene
# --------------------------------------------------------------------------


def scan_header(path: str, original: str) -> list[Violation]:
    if re.search(r"^\s*#\s*pragma\s+once\b", original, re.MULTILINE):
        return []
    return [Violation(
        "header-hygiene", path, 1,
        "header lacks #pragma once (include-guard policy)")]


def compile_header_standalone(repo: pathlib.Path, path: str,
                              include_dirs: list[str]) -> list[Violation]:
    cmd = ["g++", "-std=c++20", "-fsyntax-only", "-x", "c++"]
    for inc in include_dirs:
        cmd += ["-I", str(repo / inc)]
    cmd += [str(repo / path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 0:
        return []
    first = proc.stderr.strip().splitlines()
    detail = first[0] if first else "g++ -fsyntax-only failed"
    return [Violation(
        "header-hygiene", path, 1,
        f"header does not compile standalone (missing includes?): "
        f"{detail}")]


# --------------------------------------------------------------------------
# Allowlist / hotlist parsing
# --------------------------------------------------------------------------


@dataclasses.dataclass
class AllowEntry:
    rule: str
    path: str
    symbol: str | None
    reason: str
    line: int
    used: bool = False

    def matches(self, v: Violation) -> bool:
        return (self.rule == v.rule and self.path == v.path and
                (self.symbol is None or self.symbol == v.symbol))


def parse_allowlist(path: pathlib.Path) -> list[AllowEntry]:
    entries: list[AllowEntry] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, reason = line.partition("#")
        reason = reason.strip()
        fields = body.split()
        if len(fields) != 2 or not reason:
            raise LintError(
                f"{path}:{lineno}: allowlist entries are "
                f"'<rule> <path>[:<symbol>]  # <reason>' (reason "
                f"required): {raw!r}")
        rule, spec = fields
        if rule not in RULES:
            raise LintError(
                f"{path}:{lineno}: unknown rule '{rule}' "
                f"(known: {', '.join(RULES)})")
        target, _, symbol = spec.partition(":")
        entries.append(AllowEntry(rule, target, symbol or None, reason,
                                  lineno))
    return entries


def parse_hotlist(path: pathlib.Path) -> dict[str, list[str]]:
    hot: dict[str, list[str]] = {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        target, sep, fn = line.partition(":")
        if not sep or not fn or " " in fn:
            raise LintError(
                f"{path}:{lineno}: hotlist entries are "
                f"'<path>:<function>': {raw!r}")
        hot.setdefault(target, []).append(fn)
    return hot


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def discover(repo: pathlib.Path, roots: list[str]) -> list[str]:
    files: list[str] = []
    for root in roots:
        base = repo / root
        if base.is_file():
            files.append(root.replace("\\", "/"))
            continue
        if not base.is_dir():
            raise LintError(f"lint root '{root}' does not exist")
        for p in sorted(base.rglob("*")):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                files.append(p.relative_to(repo).as_posix())
    return files


def run_lint(repo: pathlib.Path, roots: list[str],
             allow: list[AllowEntry], hotlist: dict[str, list[str]],
             compile_headers: bool, include_dirs: list[str],
             layers: dict[str, list[str]] | None = None,
             check_cmake: bool = False,
             layers_path: str = "layers.txt") -> list[Violation]:
    closure = layer_closure(layers) if layers else {}
    if layers and check_cmake:
        check_layers_against_cmake(repo, layers_path, layers)
    violations: list[Violation] = []
    hot_seen: set[str] = set()
    for path in discover(repo, roots):
        original = (repo / path).read_text(errors="replace")
        stripped = strip_comments_and_strings(original)
        violations += scan_line_rules(path, stripped)
        if layers:
            # Include paths live inside string literals, which the stripper
            # blanks out, so this rule scans the original text.
            violations += scan_layering(path, original, layers, closure)
        if path in hotlist:
            hot_seen.add(path)
            violations += scan_hot_path(path, stripped, hotlist[path])
        if path.endswith(".hpp"):
            violations += scan_header(path, original)
            if compile_headers:
                violations += compile_header_standalone(
                    repo, path, include_dirs)
    for target in hotlist:
        if target not in hot_seen:
            raise LintError(
                f"hotlist names '{target}' but that file is not under "
                f"the scanned roots ({', '.join(roots)})")

    kept: list[Violation] = []
    for v in violations:
        suppressed = False
        for entry in allow:
            if entry.matches(v):
                entry.used = True
                suppressed = True
        if not suppressed:
            kept.append(v)
    stale = [e for e in allow if not e.used]
    if stale:
        lines = "\n".join(
            f"  line {e.line}: {e.rule} "
            f"{e.path}{':' + e.symbol if e.symbol else ''}"
            for e in stale)
        raise LintError(
            "stale allowlist entries (no longer match any violation; "
            f"delete them):\n{lines}")
    kept.sort(key=lambda v: (v.path, v.line, v.rule))
    return kept


# --------------------------------------------------------------------------
# Self-test: fixture cases under tests/lint/<case>/. Each case holds
# sources whose '// EXPECT-VIOLATION: <rule>' markers declare the exact
# multiset of violations the case must produce; optional allow.txt /
# hotlist.txt configure the run, and an expect_error.txt declares that
# the linter must fail with a config error containing that substring.
# --------------------------------------------------------------------------

EXPECT_RE = re.compile(r"//\s*EXPECT-VIOLATION:\s*([a-z-]+)")


def run_self_test(repo: pathlib.Path, fixtures: pathlib.Path) -> int:
    cases = sorted(d for d in fixtures.iterdir() if d.is_dir())
    if not cases:
        print(f"dt_lint --self-test: no fixture cases under {fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        sources = sorted(
            p.relative_to(repo).as_posix()
            for p in case.rglob("*")
            if p.suffix in SOURCE_SUFFIXES and p.is_file())
        expected: dict[str, list[str]] = {s: [] for s in sources}
        for src in sources:
            for m in EXPECT_RE.finditer((repo / src).read_text()):
                rule = m.group(1)
                if rule not in RULES:
                    print(f"FAIL {case.name}: marker names unknown rule "
                          f"'{rule}' in {src}", file=sys.stderr)
                    failures += 1
                expected[src].append(rule)
        allow_file = case / "allow.txt"
        hot_file = case / "hotlist.txt"
        layers_file = case / "layers.txt"
        expect_error = case / "expect_error.txt"
        try:
            allow = parse_allowlist(allow_file) if allow_file.exists() else []
            hotlist = parse_hotlist(hot_file) if hot_file.exists() else {}
            layers = (parse_layers(layers_file)
                      if layers_file.exists() else None)
            got = run_lint(repo, sources, allow, hotlist,
                           compile_headers=False, include_dirs=[],
                           layers=layers,
                           layers_path=layers_file.as_posix())
        except LintError as err:
            if expect_error.exists():
                want = expect_error.read_text().strip()
                if want in str(err):
                    print(f"  ok  {case.name} (config error as expected)")
                else:
                    print(f"FAIL {case.name}: error {err!s:.120} does not "
                          f"contain {want!r}", file=sys.stderr)
                    failures += 1
            else:
                print(f"FAIL {case.name}: unexpected config error: {err}",
                      file=sys.stderr)
                failures += 1
            continue
        if expect_error.exists():
            print(f"FAIL {case.name}: expected a config error, got "
                  f"{len(got)} violation(s)", file=sys.stderr)
            failures += 1
            continue
        actual: dict[str, list[str]] = {s: [] for s in sources}
        for v in got:
            actual.setdefault(v.path, []).append(v.rule)
        ok = True
        for src in sources:
            if sorted(expected[src]) != sorted(actual.get(src, [])):
                print(f"FAIL {case.name}: {src}: expected "
                      f"{sorted(expected[src])}, got "
                      f"{sorted(actual.get(src, []))}", file=sys.stderr)
                ok = False
                failures += 1
        if ok:
            print(f"  ok  {case.name}")
    total = len(cases)
    print(f"dt_lint --self-test: {total - failures}/{total} cases passed")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dt_lint.py",
        description="deepthermo domain-invariant linter")
    parser.add_argument("--repo", default=None,
                        help="repository root (default: two levels up "
                        "from this script)")
    parser.add_argument("--root", action="append", default=None,
                        metavar="DIR",
                        help="directory/file to scan, relative to the "
                        "repo (repeatable; default: src)")
    parser.add_argument("--allowlist", default="scripts/lint/dt_lint_allow.txt")
    parser.add_argument("--hotlist", default="scripts/lint/hotlist.txt")
    parser.add_argument("--layers", default="scripts/lint/layers.txt",
                        help="module DAG declaration for module-layering "
                        "(rule skipped when the file is absent)")
    parser.add_argument("--compile-headers", action="store_true",
                        help="also compile each header standalone with "
                        "g++ -fsyntax-only (slower)")
    parser.add_argument("--include-dir", action="append", default=["src"],
                        help="-I directory for --compile-headers")
    parser.add_argument("--self-test", metavar="FIXTURES",
                        help="run the fixture suite and exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    repo = (pathlib.Path(args.repo).resolve() if args.repo
            else pathlib.Path(__file__).resolve().parents[2])

    if args.self_test:
        return run_self_test(repo, (repo / args.self_test).resolve())

    try:
        allow_path = repo / args.allowlist
        hot_path = repo / args.hotlist
        layers_path = repo / args.layers
        allow = parse_allowlist(allow_path) if allow_path.exists() else []
        hotlist = parse_hotlist(hot_path) if hot_path.exists() else {}
        layers = parse_layers(layers_path) if layers_path.exists() else None
        violations = run_lint(repo, args.root or ["src"], allow, hotlist,
                              args.compile_headers, args.include_dir,
                              layers=layers, check_cmake=True,
                              layers_path=args.layers)
    except LintError as err:
        print(f"dt_lint: config error: {err}", file=sys.stderr)
        return 2

    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if not args.quiet or violations:
        n_files = len(discover(repo, args.root or ["src"]))
        print(f"dt_lint: {len(violations)} violation(s) across {n_files} "
              f"file(s) scanned")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
