#!/usr/bin/env python3
"""dt_analyze: GCC-native static analyzer gate (gcc -fanalyzer).

Runs `g++ -fanalyzer` over a curated list of translation units
(scripts/lint/analyzer_targets.txt) and fails on any -Wanalyzer-*
finding that is not explicitly triaged in the allowlist
(scripts/lint/analyzer_allow.txt).

Why curated targets rather than the whole tree: in GCC 12 the analyzer
is C-focused; on heavily templated C++ it produces state-explosion
noise inside libstdc++ internals. The curated list covers the
subsystems where the analyzer's path-sensitive checks pull their
weight -- the checkpoint/serialisation layer (raw byte I/O, fd
lifecycles), the common utility layer, and the embedded HTTP server
(socket lifecycles, request parsing) -- and is expected to grow as GCC's
C++ support matures.

Allowlist entries are `<warning-id> <tu-path>  # <reason>` with the
reason mandatory; findings are keyed by (warning, TU) no matter where
the diagnostic points (a header, or `cc1plus:` with no location at
all), so triage survives inlining-location churn. Entries that no
longer suppress anything are an error -- the allowlist cannot rot.

Exit codes: 0 clean, 1 findings, 2 bad invocation / config
(missing target file, stale allowlist entry, ...).

Usage:
  dt_analyze.py [--repo DIR] [--targets FILE] [--allowlist FILE]
                [--jobs N] [--list-targets]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import dataclasses
import pathlib
import re
import subprocess
import sys

ANALYZER_FLAGS = [
    "-std=c++20",
    "-O1",  # analyzer runs on optimised GIMPLE; -O0 changes its IL view
    "-fanalyzer",
    "-c",
    "-o",
    "/dev/null",
]

FINDING_RE = re.compile(r"\[-W(analyzer-[a-z0-9-]+)\]")


class AnalyzeError(Exception):
    """Configuration problem (bad targets file, stale allowlist, ...)."""


@dataclasses.dataclass
class AllowEntry:
    warning: str
    tu: str
    reason: str
    line: int
    used: bool = False


@dataclasses.dataclass
class Finding:
    warning: str
    tu: str
    diagnostic: str  # first line of the original diagnostic


def parse_targets(path: pathlib.Path, repo: pathlib.Path) -> list[str]:
    if not path.is_file():
        raise AnalyzeError(f"targets file missing: {path}")
    targets: list[str] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if not (repo / line).is_file():
            raise AnalyzeError(
                f"{path}:{lineno}: target '{line}' does not exist "
                "(stale targets entry?)")
        targets.append(line)
    if not targets:
        raise AnalyzeError(f"targets file {path} lists no translation units")
    return targets


def parse_allowlist(path: pathlib.Path) -> list[AllowEntry]:
    entries: list[AllowEntry] = []
    if not path.is_file():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, reason = line.partition("#")
        reason = reason.strip()
        fields = body.split()
        if len(fields) != 2 or not reason:
            raise AnalyzeError(
                f"{path}:{lineno}: allowlist entries are "
                f"'<warning-id> <tu-path>  # <reason>' (reason "
                f"required): {raw!r}")
        warning, tu = fields
        if not warning.startswith("analyzer-"):
            raise AnalyzeError(
                f"{path}:{lineno}: '{warning}' is not a -Wanalyzer-* "
                "warning id (write it without the -W prefix)")
        entries.append(AllowEntry(warning, tu, reason, lineno))
    return entries


def analyze_tu(repo: pathlib.Path, tu: str) -> list[Finding]:
    cmd = ["g++", *ANALYZER_FLAGS, "-I", str(repo / "src"), str(repo / tu)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings: list[Finding] = []
    for line in proc.stderr.splitlines():
        m = FINDING_RE.search(line)
        if m:
            findings.append(Finding(m.group(1), tu, line.strip()))
    if proc.returncode != 0 and not findings:
        raise AnalyzeError(
            f"g++ -fanalyzer failed on {tu} without findings:\n"
            f"{proc.stderr.strip()[:2000]}")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dt_analyze.py",
        description="gcc -fanalyzer gate over curated translation units")
    parser.add_argument("--repo", default=None)
    parser.add_argument("--targets",
                        default="scripts/lint/analyzer_targets.txt")
    parser.add_argument("--allowlist",
                        default="scripts/lint/analyzer_allow.txt")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--list-targets", action="store_true")
    args = parser.parse_args(argv)

    repo = (pathlib.Path(args.repo).resolve() if args.repo
            else pathlib.Path(__file__).resolve().parents[2])

    try:
        targets = parse_targets(repo / args.targets, repo)
        allow = parse_allowlist(repo / args.allowlist)
    except AnalyzeError as err:
        print(f"dt_analyze: config error: {err}", file=sys.stderr)
        return 2

    if args.list_targets:
        print("\n".join(targets))
        return 0

    findings: list[Finding] = []
    try:
        with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
            for batch in pool.map(lambda t: analyze_tu(repo, t), targets):
                findings.extend(batch)
    except AnalyzeError as err:
        print(f"dt_analyze: {err}", file=sys.stderr)
        return 2

    kept: list[Finding] = []
    for f in findings:
        suppressed = False
        for entry in allow:
            if entry.warning == f.warning and entry.tu == f.tu:
                entry.used = True
                suppressed = True
        if not suppressed:
            kept.append(f)

    stale = [e for e in allow if not e.used]
    if stale:
        lines = "\n".join(
            f"  line {e.line}: {e.warning} {e.tu}" for e in stale)
        print("dt_analyze: stale allowlist entries (no longer suppress "
              f"any finding; delete them):\n{lines}", file=sys.stderr)
        return 2

    for f in kept:
        print(f"{f.tu}: [{f.warning}] {f.diagnostic}")
    n_sup = len(findings) - len(kept)
    print(f"dt_analyze: {len(kept)} finding(s) ({n_sup} allowlisted) "
          f"across {len(targets)} translation unit(s)")
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
