#!/usr/bin/env bash
# Record the performance baseline used by scripts/check.sh's perf smoke.
#
#   scripts/bench_baseline.sh [--cells N] [--quick]
#
# Builds the Release tree (build/), runs the micro benchmarks plus the
# F4 proposal-throughput table, and combines the headline numbers into
# BENCH_baseline.json at the repo root. Re-run on a quiet machine after
# intentional performance changes; check.sh compares fresh runs against
# this file and fails on >20% regressions.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cells=10           # 2*10^3 = 2000 sites, the ISSUE 4 throughput scale
budget_sweeps=200  # kernel-quality table budget (not part of the gate)
min_time=0.5
while [[ $# -gt 0 ]]; do
  case "$1" in
    --cells) cells="$2"; shift 2 ;;
    --quick) budget_sweeps=50; min_time=0.2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "${jobs}" --target bench_micro bench_f4_proposals

micro_json="${build_dir}/bench_micro_baseline.json"
f4_json="${build_dir}/bench_f4_baseline.json"
rm -f "${f4_json}"

# Micro kernels: the GEMM + decode + proposal + energy hot paths.
"${build_dir}/bench/bench_micro" \
  --benchmark_filter='BM_(GemmNN|GemmBackward|TotalEnergy|AssignDelta|VaeDecodeBatch|VaeGlobalProposal)' \
  --benchmark_min_time="${min_time}" \
  --benchmark_out="${micro_json}" --benchmark_out_format=json

# F4 proposal throughput at N = 2*cells^3 sites (appends JSON lines).
# --walkers=8 also records the decode-plane on/off aggregate table
# (Table F4d) at W in {1, 4, 8}.
"${build_dir}/bench/bench_f4_proposals" \
  --cells="${cells}" --budget_sweeps="${budget_sweeps}" \
  --walkers=8 \
  --json="${f4_json}"

python3 - "$repo_root" "$micro_json" "$f4_json" "$cells" <<'PY'
import json
import subprocess
import sys

repo_root, micro_path, f4_path, cells = sys.argv[1:5]

with open(micro_path) as f:
    micro_raw = json.load(f)
micro = {}
for b in micro_raw.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    micro[b["name"]] = {
        "cpu_time_ns": round(b["cpu_time"], 1),
        "real_time_ns": round(b["real_time"], 1),
        "items_per_second": round(b.get("items_per_second", 0.0), 1),
    }

f4 = {}
with open(f4_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        table = json.loads(line)
        tag = table.get("tag") or table.get("bench", "")
        cols = table["columns"]
        rows = {}
        for row in table["rows"]:
            rows[row[0]] = dict(zip(cols[1:], row[1:]))
        f4[tag] = rows

commit = subprocess.run(
    ["git", "-C", repo_root, "rev-parse", "--short", "HEAD"],
    capture_output=True, text=True).stdout.strip() or "unknown"

# Headline decode-plane numbers (Table F4d): per walker count W, the
# plane-on proposal latency, fused-GEMM batching achieved, and the
# packed-weight cache hit rate. Single-core caveat: with fewer cores
# than walkers both modes contend for the same ALUs, so `speedup`
# measures coalescing overhead/benefit at the ALU limit, not the
# multi-core fused-GEMM win (see DESIGN.md "Cross-walker decode plane").
decode_plane = {}
for walkers, row in f4.get("_walkers", {}).items():
    decode_plane[f"W{walkers}"] = {  # table cells arrive as strings
        "us_per_proposal_on": round(float(row["us_per_prop_on"]), 2),
        "rows_per_gemm": round(float(row["rows_per_gemm"]), 2),
        "pack_cache_hit_rate": round(float(row["pack_hit_rate"]), 4),
        "speedup_on_vs_off": round(float(row["speedup"]), 3),
    }

out = {
    "schema": 1,
    "commit": commit,
    "cells": int(cells),
    "micro": dict(sorted(micro.items())),
    "decode_plane": decode_plane,
    "f4": f4,
}
path = f"{repo_root}/BENCH_baseline.json"
with open(path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {path}")
PY
