#!/usr/bin/env bash
# Formatting diff gate: every C++ file under src/, tests/, bench/ and
# examples/ must be clang-format-clean against the project .clang-format
# (Google base, 80 columns). Prints a unified diff per offending file.
#
#   scripts/check_format.sh            # gate (exit 1 on drift)
#   scripts/check_format.sh --fix      # rewrite files in place
#
# Exit codes: 0 clean, 1 drift found, 2 clang-format not installed
# (callers like check.sh treat 2 as a skip, not a failure).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
mode="${1:-check}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format.sh: clang-format not found on PATH; skipping" >&2
  exit 2
fi

mapfile -t files < <(
  find "${repo_root}/src" "${repo_root}/tests" "${repo_root}/bench" \
       "${repo_root}/examples" \
       -name '*.hpp' -o -name '*.cpp' | sort)

if [[ "${mode}" == "--fix" ]]; then
  clang-format -i --style=file "${files[@]}"
  echo "check_format.sh: reformatted ${#files[@]} file(s)"
  exit 0
fi

drift=0
for f in "${files[@]}"; do
  if ! diff -u --label "${f}" --label "${f} (formatted)" \
       "${f}" <(clang-format --style=file "${f}") ; then
    drift=1
  fi
done

if [[ "${drift}" == "1" ]]; then
  echo "check_format.sh: formatting drift -- run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format.sh: ${#files[@]} file(s) clang-format clean"
